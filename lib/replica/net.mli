(** Simulated one-way network link sharing the discrete-event clock.

    A link carries framed WAL records (and acks, and snapshot pages)
    from one node to another under a fault profile in the spirit of
    {!Fpb_storage.Fault}: a latency floor plus uniform jitter, per-byte
    transfer cost, transient loss cured by timeout-and-retransmit,
    probabilistic reordering, and scheduled partition windows during
    which nothing gets through.  Delivery is in order — a message that
    would overtake its predecessor is held back, so reordering and
    retransmission surface as head-of-line latency, exactly as they do
    on a TCP-like transport.

    Every draw comes from the link's own {!Fpb_workload.Prng} substream
    (use {!Fpb_workload.Prng.split}), so fault schedules never perturb
    workload key draws and exact-rerun determinism survives replication. *)

type profile = {
  base_ns : int;  (** propagation + service floor per message *)
  jitter_ns : int;  (** uniform extra in [0, jitter_ns] *)
  byte_ns : int;  (** transfer cost per payload byte *)
  loss : float;  (** per-transmission loss probability, [0, 1) *)
  rto_ns : int;  (** retransmission timeout after a lost transmission *)
  reorder_p : float;  (** probability of an out-of-order extra delay *)
  reorder_extra_ns : int;  (** the extra delay a reordered message draws *)
  partitions : (int * int) list;
      (** absolute [start, stop) windows (simulated ns) during which no
          transmission succeeds; a send inside a window waits it out *)
}

(** 100 us floor, 20 us jitter, 1 ns/byte (~1 GB/s), lossless, no
    partitions: a healthy datacenter link. *)
val default_profile : profile

type stats = {
  msgs : Fpb_obs.Counter.t;  (** [net.msgs] *)
  bytes : Fpb_obs.Counter.t;  (** [net.bytes] *)
  drops : Fpb_obs.Counter.t;  (** [net.drops]: transmissions lost *)
  retransmits : Fpb_obs.Counter.t;  (** [net.retransmits] *)
  reorders : Fpb_obs.Counter.t;  (** [net.reorders] *)
  partition_waits : Fpb_obs.Counter.t;  (** [net.partition_waits] *)
}

type t

(** [create ~prng profile] — [prng] becomes the link's private stream
    (pass a fresh {!Fpb_workload.Prng.split} child, not a shared
    generator). *)
val create : prng:Fpb_workload.Prng.t -> profile -> t

val profile : t -> profile
val set_profile : t -> profile -> unit

(** [deliver t ~send ~bytes] computes the delivery time (absolute ns) of
    a [bytes]-byte message handed to the link at [send]: partitions are
    waited out, lost transmissions retransmit after [rto_ns], and the
    result is resequenced after the previous delivery.  Pure simulated
    time — the caller charges its own clock. *)
val deliver : t -> send:int -> bytes:int -> int

(** Delivery latency distribution ([net.delay_ns]). *)
val delay : t -> Fpb_obs.Histogram.t

val stats : t -> stats

(** [net.*] counter values. *)
val kv : t -> (string * int) list
