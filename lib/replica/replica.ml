(* WAL log-shipping replication.

   The group piggybacks on the WAL's durable-record observer: every
   record a successful flush makes durable is archived (LSN, framed
   bytes, CRC, ship time) and sent to each live replica over its own
   simulated link.  Delivery, the replica's log append and the returning
   ack are computed eagerly, at ship time, as pure future timestamps —
   the primary's clock never waits for them unless the commit barrier
   (semi-sync) explicitly advances to the k-th ack.  Replica *state* is
   materialised lazily ([sync]): records are applied in batches ending
   at a Commit/Checkpoint record, and only once durable on the replica's
   log device by the requested horizon, so a kill at any instant sees
   each replica as exactly the prefix of whole committed operations its
   own log had absorbed by then — records beyond the last commit are
   staged, and truncating "the unacked suffix" at promotion is just
   dropping them.

   Archive LSNs are consecutive (the WAL allocates LSNs in seal order
   and the observer sees records in seal order), so seq = lsn - lo is
   O(1).  Across a failover the promoted WAL continues the LSN space
   ([first_lsn = committed_lsn + 1]) and the old group stays reachable
   through [prev] with [valid_upto] marking where its history stops
   being authoritative — the chain is what [rejoin]'s (LSN, CRC)
   divergence scan walks. *)

module Clock = Fpb_simmem.Clock
module Sim = Fpb_simmem.Sim
module Counter = Fpb_obs.Counter
module Histogram = Fpb_obs.Histogram
module Disk_model = Fpb_storage.Disk_model
module Page_store = Fpb_storage.Page_store
module Buffer_pool = Fpb_storage.Buffer_pool
module Checksum = Fpb_storage.Checksum
module Vec = Fpb_storage.Vec
module Prng = Fpb_workload.Prng
module Shadow = Fpb_snapshot.Shadow
module Wal = Fpb_wal.Wal

type mode = Async | Semi_sync of int

type config = {
  mode : mode;
  window : int;
  ack_bytes : int;
  detect_timeout_ns : int;
  n_disks : int;
  pool_pages : int;
  group_commit_bytes : int;
  log_mirrors : int;
  log_stripes : int;
}

let default_config =
  {
    mode = Semi_sync 1;
    window = 64;
    ack_bytes = 24;
    detect_timeout_ns = 5_000_000;
    n_disks = 2;
    pool_pages = 96;
    group_commit_bytes = 0;
    log_mirrors = 1;
    log_stripes = 1;
  }

(* One shipped record.  [shipped_ns] is the primary flush completion
   (local durability — the Async ack point); per-node delivery times
   live in the node's own vectors, index-aligned with the archive. *)
type entry = {
  lsn : int;
  framed : string;
  record : Wal.record;
  crc : int;
  shipped_ns : int;
}

let dummy_entry =
  {
    lsn = 0;
    framed = "";
    record = Wal.Commit { lsn = 0; op = 0; meta = [] };
    crc = 0;
    shipped_ns = 0;
  }

type node = {
  id : int;
  mutable link : Net.t;
  mutable ack_link : Net.t;
  log_disk : Disk_model.t;  (* the replica's own (serial) log device *)
  mutable log_bytes : int;
  mutable pages : Bytes.t option Vec.t;  (* applied images, index = page id *)
  mutable total_pages : int;
  free : (int, unit) Hashtbl.t;
  mutable applied_seq : int;  (* archive entries [0, applied_seq) applied *)
  mutable committed_op : int;
  mutable committed_lsn : int;
  mutable meta : int list;
  mutable alive : bool;
  (* index-aligned with the archive; for a live node both always have
     length = archive length (padded at join/revival) *)
  mutable durable_ns : int Vec.t;
  mutable ack_ns : int Vec.t;
}

type stats = {
  c_shipped : Counter.t;
  c_shipped_bytes : Counter.t;
  c_semi_waits : Counter.t;
  c_failovers : Counter.t;
  c_failover_trunc : Counter.t;
  c_rebaselined : Counter.t;
  c_rejoin_forks : Counter.t;
  c_rejoin_trunc : Counter.t;
  c_rejoin_pages : Counter.t;
  c_trimmed : Counter.t;
  c_catchup_log : Counter.t;
  c_catchup_pages : Counter.t;
  ack_wait : Histogram.t;
}

let make_stats () =
  {
    c_shipped = Counter.make "replica.shipped_records";
    c_shipped_bytes = Counter.make "replica.shipped_bytes";
    c_semi_waits = Counter.make "replica.semi_sync_waits";
    c_failovers = Counter.make "replica.failovers";
    c_failover_trunc = Counter.make "replica.failover.truncated_records";
    c_rebaselined = Counter.make "replica.rebaselined_records";
    c_rejoin_forks = Counter.make "replica.rejoin.forks";
    c_rejoin_trunc = Counter.make "replica.rejoin.truncated_records";
    c_rejoin_pages = Counter.make "replica.rejoin.pages_copied";
    c_trimmed = Counter.make "replica.archive.trimmed_records";
    c_catchup_log = Counter.make "replica.catchup.log_records";
    c_catchup_pages = Counter.make "replica.catchup.snapshot_pages";
    ack_wait = Histogram.make "replica.ack_wait_ns";
  }

type t = {
  sim : Sim.t;
  clock : Clock.t;
  wal : Wal.t;
  pool : Buffer_pool.t;
  page_size : int;
  cfg : config;
  archive : entry Vec.t;
  mutable base_seq : int;  (* entries below it released by [trim_archive] *)
  mutable nodes : node array;
  mutable next_id : int;
  mutable killed : bool;
  mutable killed_at : int;
  first_lsn : int;  (* this group's history covers LSNs >= first_lsn *)
  mutable valid_upto : int option;  (* ... and <= this, once superseded *)
  mutable prev : t option;  (* pre-failover group, for the rejoin scan *)
  (* committed cursor the group started from (commits before any record
     shipped) *)
  init_op : int;
  init_lsn : int;
  init_meta : int list;
  stats : stats;
}

let config t = t.cfg
let n_nodes t = Array.length t.nodes
let node t i = t.nodes.(i)
let node_id n = n.id
let node_alive n = n.alive
let node_link n = n.link
let node_committed_op n = n.committed_op
let node_committed_lsn n = n.committed_lsn
let ack_wait t = t.stats.ack_wait

let seq_of_lsn t lsn =
  if Vec.length t.archive = 0 then None
  else
    let s = lsn - (Vec.get t.archive 0).lsn in
    if s < 0 || s >= Vec.length t.archive then None else Some s

let is_commit_entry e =
  match e.record with Wal.Commit _ | Wal.Checkpoint _ -> true | _ -> false

(* ------------------------- replica state ---------------------------- *)

let ensure_pages n id =
  while Vec.length n.pages <= id do
    Vec.push n.pages None
  done

let set_page n id v =
  ensure_pages n id;
  Vec.set n.pages id v

let get_page n id = if id < Vec.length n.pages then Vec.get n.pages id else None

(* Redo one archived record into the node's applied state.  All cases
   are idempotent (images and deltas overwrite, alloc/free set-update),
   which is what makes authoritative re-ships after a rejoin safe even
   when they overlap records the node already held. *)
let apply_record t n e =
  match e.record with
  | Wal.Image { page; img; _ } ->
      n.total_pages <- max n.total_pages page;
      Hashtbl.remove n.free page;
      set_page n page (Some (Bytes.copy img))
  | Wal.Delta { page; off; bytes; _ } ->
      n.total_pages <- max n.total_pages page;
      let b =
        match get_page n page with
        | Some b -> b
        | None ->
            let b = Bytes.make t.page_size '\000' in
            set_page n page (Some b);
            b
      in
      Bytes.blit bytes 0 b off (Bytes.length bytes)
  | Wal.Commit { op; meta; _ } | Wal.Checkpoint { op; meta; _ } ->
      n.committed_op <- op;
      n.committed_lsn <- e.lsn;
      n.meta <- meta
  | Wal.Alloc { page; _ } ->
      n.total_pages <- max n.total_pages page;
      Hashtbl.remove n.free page;
      set_page n page (Some (Bytes.make t.page_size '\000'))
  | Wal.Free { page; _ } ->
      Hashtbl.replace n.free page ();
      set_page n page None

(* Apply every whole committed batch durable on the node by [horizon];
   returns how many records beyond the last commit are durable but
   staged (the node's unacked suffix as of [horizon]).  Durable times
   are monotone (serial log device fed by an in-order link), so the
   scan can stop at the first record past the horizon. *)
let sync t n ~horizon =
  let len = Vec.length n.durable_ns in
  let i = ref n.applied_seq in
  let last_commit = ref (n.applied_seq - 1) in
  while !i < len && Vec.get n.durable_ns !i <= horizon do
    if is_commit_entry (Vec.get t.archive !i) then last_commit := !i;
    incr i
  done;
  for j = n.applied_seq to !last_commit do
    apply_record t n (Vec.get t.archive j)
  done;
  if !last_commit >= n.applied_seq then n.applied_seq <- !last_commit + 1;
  !i - n.applied_seq

let sync_node t ?horizon n =
  let horizon =
    match horizon with Some h -> h | None -> Clock.now t.clock
  in
  ignore (sync t n ~horizon : int);
  n.committed_op

(* --------------------------- shipping ------------------------------- *)

(* Durable-record observer: archive the record and compute, per live
   node, its delivery, replica-log-durable and ack times.  The in-flight
   window gates the send on the ack of the record [window] back. *)
let ship t lsn framed =
  if not t.killed then begin
    let now = Clock.now t.clock in
    let seq = Vec.length t.archive in
    let record =
      match Wal.Codec.decode (Bytes.unsafe_of_string framed) 0 with
      | Some (r, _) -> r
      | None -> invalid_arg "Fpb_replica: undecodable shipped record"
    in
    Vec.push t.archive
      { lsn; framed; record; crc = Checksum.string framed; shipped_ns = now };
    Counter.incr t.stats.c_shipped;
    Counter.add t.stats.c_shipped_bytes (String.length framed);
    Array.iter
      (fun n ->
        if n.alive then begin
          let gate =
            if seq >= t.cfg.window then
              max now (Vec.get n.ack_ns (seq - t.cfg.window))
            else now
          in
          let dlv = Net.deliver n.link ~send:gate ~bytes:(String.length framed) in
          let phys = n.log_bytes / t.page_size in
          let durable =
            Disk_model.write_sync n.log_disk ~earliest:dlv ~append:true
              ~disk:0 ~phys ()
          in
          n.log_bytes <- n.log_bytes + String.length framed;
          Vec.push n.durable_ns durable;
          Vec.push n.ack_ns
            (Net.deliver n.ack_link ~send:durable ~bytes:t.cfg.ack_bytes)
        end)
      t.nodes
  end

(* Commit barrier: under semi-sync, block (simulated time) until the
   k-th replica ack of this commit's LSN.  k is clamped to the replicas
   the record actually shipped to, so a shrunken group degrades to
   waiting on everyone rather than hanging. *)
let barrier t ~op:_ ~lsn =
  if not t.killed then
    match t.cfg.mode with
    | Async -> ()
    | Semi_sync k -> (
        Wal.flush t.wal;
        match seq_of_lsn t lsn with
        | None -> ()
        | Some seq ->
            let acks = ref [] in
            Array.iter
              (fun n ->
                if seq < Vec.length n.ack_ns then
                  acks := Vec.get n.ack_ns seq :: !acks)
              t.nodes;
            let k' = min k (List.length !acks) in
            if k' > 0 then begin
              let sorted = List.sort compare !acks in
              let tk = List.nth sorted (k' - 1) in
              let now = Clock.now t.clock in
              Counter.incr t.stats.c_semi_waits;
              Histogram.record t.stats.ack_wait (max 0 (tk - now));
              Clock.advance_to t.clock tk
            end)

let install t =
  Wal.set_durable_observer t.wal (Some (ship t));
  Wal.set_commit_barrier t.wal (Some (barrier t))

let detach t =
  Wal.set_durable_observer t.wal None;
  Wal.set_commit_barrier t.wal None

(* --------------------------- creation ------------------------------- *)

let fresh_node t ~prng ~profile =
  let store = Buffer_pool.store t.pool in
  let total = Page_store.total_pages store in
  let free = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace free id ()) (Page_store.free_list store);
  let pages = Vec.create ~dummy:None in
  Vec.push pages None (* page 0 = nil *);
  for id = 1 to total do
    if Hashtbl.mem free id then Vec.push pages None
    else Vec.push pages (Some (Bytes.copy (Page_store.bytes store id)))
  done;
  let id = t.next_id in
  t.next_id <- id + 1;
  {
    id;
    link = Net.create ~prng:(Prng.split prng) profile;
    ack_link = Net.create ~prng:(Prng.split prng) { profile with partitions = [] };
    log_disk =
      Disk_model.create
        ~transfer_ns:(Disk_model.transfer_ns_of_page_size t.page_size)
        ~n_disks:1 t.clock;
    log_bytes = 0;
    pages;
    total_pages = total;
    free;
    applied_seq = 0;
    committed_op = t.init_op;
    committed_lsn = t.init_lsn;
    meta = t.init_meta;
    alive = true;
    durable_ns = Vec.create ~dummy:0;
    ack_ns = Vec.create ~dummy:0;
  }

let create ~config:cfg ~prng ~profiles (wal, pool) =
  if Wal.in_operation wal then invalid_arg "Replica.create: mid-operation";
  Wal.flush wal;
  let sim = Buffer_pool.sim pool in
  let store = Buffer_pool.store pool in
  (* The base-backup cut's index metadata: the newest commit/checkpoint
     already in the log (at minimum the attach-time checkpoint), so a
     promotion before the first shipped commit still restores a handle. *)
  let init_meta =
    List.fold_left
      (fun acc r ->
        match r with
        | Wal.Commit { meta; _ } | Wal.Checkpoint { meta; _ } -> meta
        | _ -> acc)
      []
      (Wal.durable_records wal)
  in
  let t =
    {
      sim;
      clock = sim.Sim.clock;
      wal;
      pool;
      page_size = Page_store.page_size store;
      cfg;
      archive = Vec.create ~dummy:dummy_entry;
      base_seq = 0;
      nodes = [||];
      next_id = 0;
      killed = false;
      killed_at = 0;
      first_lsn = Wal.last_lsn wal + 1;
      valid_upto = None;
      prev = None;
      init_op = Wal.last_committed_op wal;
      init_lsn = Wal.last_lsn wal;
      init_meta;
      stats = make_stats ();
    }
  in
  t.nodes <-
    Array.of_list (List.map (fun p -> fresh_node t ~prng ~profile:p) profiles);
  install t;
  t

(* ---------------------------- oracles ------------------------------- *)

let node_durable_op t n ~horizon =
  let best = ref t.init_op in
  (try
     for i = 0 to Vec.length n.durable_ns - 1 do
       if Vec.get n.durable_ns i > horizon then raise Exit
       else
         match (Vec.get t.archive i).record with
         | Wal.Commit { op; _ } | Wal.Checkpoint { op; _ } -> best := op
         | _ -> ()
     done
   with Exit -> ());
  !best

let acked_op t ~horizon =
  let rec scan i =
    if i < 0 then t.init_op
    else
      let e = Vec.get t.archive i in
      match e.record with
      | Wal.Commit { op; _ } | Wal.Checkpoint { op; _ } ->
          let ok =
            e.shipped_ns <= horizon
            &&
            match t.cfg.mode with
            | Async -> true
            | Semi_sync k ->
                let avail = ref 0 and got = ref 0 in
                Array.iter
                  (fun n ->
                    if i < Vec.length n.ack_ns then begin
                      incr avail;
                      if Vec.get n.ack_ns i <= horizon then incr got
                    end)
                  t.nodes;
                !got >= min k !avail
          in
          if ok then op else scan (i - 1)
      | _ -> scan (i - 1)
  in
  scan (Vec.length t.archive - 1)

(* --------------------------- failover ------------------------------- *)

let kill t =
  if not t.killed then begin
    t.killed <- true;
    t.killed_at <- Clock.now t.clock
  end

let killed_at t = if t.killed then Some t.killed_at else None

type promotion = {
  node_id : int;
  committed_op : int;
  committed_lsn : int;
  meta : int list;
  truncated_records : int;
  store : Page_store.t;
  disks : Disk_model.t;
  pool : Buffer_pool.t;
  wal : Wal.t;
}

let promote ?node t =
  if not t.killed then invalid_arg "Replica.promote: primary not killed";
  let horizon = t.killed_at in
  let live = List.filter (fun n -> n.alive) (Array.to_list t.nodes) in
  if live = [] then invalid_arg "Replica.promote: no live replica";
  List.iter (fun n -> ignore (sync t n ~horizon : int)) live;
  let best =
    match node with
    | Some n ->
        if not n.alive then invalid_arg "Replica.promote: dead node";
        n
    | None ->
        List.fold_left
          (fun (a : node) (n : node) ->
            if n.committed_lsn > a.committed_lsn then n else a)
          (List.hd live) (List.tl live)
  in
  (* the staged suffix: durable on the node by the kill but beyond its
     last commit — exactly what the promotion truncates *)
  let staged = ref 0 in
  let i = ref best.applied_seq in
  while
    !i < Vec.length best.durable_ns && Vec.get best.durable_ns !i <= horizon
  do
    incr staged;
    incr i
  done;
  Clock.advance_to t.clock (horizon + t.cfg.detect_timeout_ns);
  let store = Page_store.create ~page_size:t.page_size ~n_disks:t.cfg.n_disks in
  for id = 1 to best.total_pages do
    let pid = Page_store.alloc store in
    if pid <> id then invalid_arg "Replica.promote: non-sequential alloc";
    match get_page best id with
    | Some b ->
        Bytes.blit b 0 (Page_store.bytes store id) 0 t.page_size;
        Page_store.stamp ~lsn:best.committed_lsn store id
    | None -> ()
  done;
  let free = Hashtbl.fold (fun k () acc -> k :: acc) best.free [] in
  Page_store.set_free_list store (List.sort compare free);
  let disks =
    Disk_model.create
      ~transfer_ns:(Disk_model.transfer_ns_of_page_size t.page_size)
      ~n_disks:t.cfg.n_disks t.clock
  in
  let pool = Buffer_pool.create ~capacity:t.cfg.pool_pages t.sim store disks in
  let wal =
    Wal.attach ~group_commit_bytes:t.cfg.group_commit_bytes
      ~log_mirrors:t.cfg.log_mirrors ~log_stripes:t.cfg.log_stripes
      ~first_lsn:(best.committed_lsn + 1) ~meta:best.meta pool
  in
  best.alive <- false;
  Counter.incr t.stats.c_failovers;
  Counter.add t.stats.c_failover_trunc !staged;
  {
    node_id = best.id;
    committed_op = best.committed_op;
    committed_lsn = best.committed_lsn;
    meta = best.meta;
    truncated_records = !staged;
    store;
    disks;
    pool;
    wal;
  }

let copy_pages src =
  let dst = Vec.create ~dummy:None in
  Vec.iteri (fun _ b -> Vec.push dst (Option.map Bytes.copy b)) src;
  dst

let resume (t : t) p =
  let promoted =
    match List.find_opt (fun n -> n.id = p.node_id) (Array.to_list t.nodes) with
    | Some n -> n
    | None -> invalid_arg "Replica.resume: unknown promoted node"
  in
  let cut = promoted.applied_seq in
  let survivors =
    List.filter (fun n -> n.alive && n.id <> p.node_id) (Array.to_list t.nodes)
  in
  List.iter
    (fun n ->
      if n.applied_seq > cut then begin
        (* the survivor out-ran the promoted node (explicit [?node]
           override chose a laggard): reprovision it wholesale from the
           promoted state — it applied commits the new history dropped *)
        n.pages <- copy_pages promoted.pages;
        Hashtbl.reset n.free;
        Hashtbl.iter (fun k () -> Hashtbl.replace n.free k ()) promoted.free;
        n.total_pages <- promoted.total_pages
      end
      else begin
        Counter.add t.stats.c_rebaselined (cut - n.applied_seq);
        for j = n.applied_seq to cut - 1 do
          apply_record t n (Vec.get t.archive j)
        done
      end;
      n.applied_seq <- 0;
      n.committed_op <- p.committed_op;
      n.committed_lsn <- p.committed_lsn;
      n.meta <- p.meta;
      n.durable_ns <- Vec.create ~dummy:0;
      n.ack_ns <- Vec.create ~dummy:0)
    survivors;
  t.valid_upto <- Some p.committed_lsn;
  let nt =
    {
      t with
      wal = p.wal;
      pool = p.pool;
      archive = Vec.create ~dummy:dummy_entry;
      base_seq = 0;
      nodes = Array.of_list survivors;
      killed = false;
      killed_at = 0;
      first_lsn = p.committed_lsn + 1;
      valid_upto = None;
      prev = Some t;
      init_op = p.committed_op;
      init_lsn = p.committed_lsn;
      init_meta = p.meta;
    }
  in
  install nt;
  nt

(* ----------------------------- rejoin ------------------------------- *)

type rejoin_result =
  | Rejoined of { fork_lsn : int; truncated_records : int; pages_copied : int }
  | Snapshot_required of { fork_lsn : int }

(* Locate [lsn] in the shipped history, walking the failover chain:
   each group is authoritative for (prev.valid_upto, valid_upto]. *)
let rec classify g lsn =
  if
    lsn >= g.first_lsn
    && match g.valid_upto with None -> true | Some v -> lsn <= v
  then
    if Vec.length g.archive = 0 then `Divergent
    else
      let s = lsn - (Vec.get g.archive 0).lsn in
      if s < 0 || s >= Vec.length g.archive then
        (* LSNs this group's WAL owns but never shipped (e.g. its
           attach-time checkpoint) or hasn't reached: either way the old
           primary's record there is not shared history *)
        `Divergent
      else if s < g.base_seq then `Trimmed
      else `Hit (Vec.get g.archive s)
  else
    match g.prev with Some p -> classify p lsn | None -> `Base

let pages_of_record acc = function
  | Wal.Image { page; _ }
  | Wal.Delta { page; _ }
  | Wal.Alloc { page; _ }
  | Wal.Free { page; _ } ->
      Hashtbl.replace acc page ()
  | Wal.Commit _ | Wal.Checkpoint _ -> ()

let rec collect_history_pages g ~fork acc =
  Vec.iteri
    (fun _ e ->
      if
        e.lsn >= fork
        && match g.valid_upto with None -> true | Some v -> e.lsn <= v
      then pages_of_record acc e.record)
    g.archive;
  match g.prev with
  | Some p -> collect_history_pages p ~fork acc
  | None -> ()

(* Re-ship archive entries [from, len) to the node serially (each send
   gated on the previous record's durability), recording real delivery
   times; returns (records shipped, final cursor). *)
let ship_tail t n ~from ~start_cursor =
  let cursor = ref start_cursor in
  let shipped = ref 0 in
  for i = from to Vec.length t.archive - 1 do
    let e = Vec.get t.archive i in
    let dlv = Net.deliver n.link ~send:!cursor ~bytes:(String.length e.framed) in
    let phys = n.log_bytes / t.page_size in
    let durable =
      Disk_model.write_sync n.log_disk ~earliest:dlv ~append:true ~disk:0
        ~phys ()
    in
    n.log_bytes <- n.log_bytes + String.length e.framed;
    Vec.push n.durable_ns durable;
    Vec.push n.ack_ns (Net.deliver n.ack_link ~send:durable ~bytes:t.cfg.ack_bytes);
    cursor := durable;
    incr shipped
  done;
  (!shipped, !cursor)

let rejoin (t : t) ~old_pool ~old_wal ~prng ?(profile = Net.default_profile)
    () =
  if Wal.is_crashed old_wal then
    invalid_arg "Replica.rejoin: recover the old primary's WAL first";
  if Wal.in_operation t.wal then invalid_arg "Replica.rejoin: mid-operation";
  Wal.flush t.wal;
  let old_recs = Wal.durable_records old_wal in
  let fork = ref None and trimmed = ref None in
  List.iter
    (fun r ->
      if !fork = None && !trimmed = None then
        let lsn = Wal.record_lsn r in
        match classify t lsn with
        | `Base -> ()
        | `Hit e ->
            if e.crc <> Checksum.string (Wal.Codec.encode r) then
              fork := Some lsn
        | `Divergent -> fork := Some lsn
        | `Trimmed -> trimmed := Some lsn)
    old_recs;
  match !trimmed with
  | Some fork_lsn -> Snapshot_required { fork_lsn }
  | None ->
      let fork_lsn =
        match !fork with
        | Some l -> l
        | None ->
            (* pure prefix, no divergence: fork just past its head *)
            1 + List.fold_left (fun a r -> max a (Wal.record_lsn r)) 0 old_recs
      in
      let truncated_records =
        List.length
          (List.filter (fun r -> Wal.record_lsn r >= fork_lsn) old_recs)
      in
      (* pages to rewind: touched by the divergent suffix, or by the
         surviving history since the fork — everything else is provably
         identical on both sides *)
      let rewind = Hashtbl.create 64 in
      List.iter
        (fun r ->
          if Wal.record_lsn r >= fork_lsn then pages_of_record rewind r)
        old_recs;
      collect_history_pages t ~fork:fork_lsn rewind;
      let nstore = Buffer_pool.store t.pool in
      let ostore = Buffer_pool.store old_pool in
      let total = Page_store.total_pages nstore in
      let free = Hashtbl.create 16 in
      List.iter
        (fun id -> Hashtbl.replace free id ())
        (Page_store.free_list nstore);
      let pages = Vec.create ~dummy:None in
      Vec.push pages None;
      let copied = ref 0 in
      for id = 1 to total do
        if Hashtbl.mem free id then Vec.push pages None
        else if Hashtbl.mem rewind id then begin
          incr copied;
          Vec.push pages (Some (Bytes.copy (Page_store.bytes nstore id)))
        end
        else if id <= Page_store.total_pages ostore && Page_store.is_live ostore id
        then Vec.push pages (Some (Bytes.copy (Page_store.bytes ostore id)))
        else Vec.push pages (Some (Bytes.copy (Page_store.bytes nstore id)))
      done;
      (* committed cursor + replay point from the current archive *)
      let last_commit = ref (-1) in
      for i = 0 to Vec.length t.archive - 1 do
        if is_commit_entry (Vec.get t.archive i) then last_commit := i
      done;
      let applied_seq = !last_commit + 1 in
      let committed_op, committed_lsn, meta =
        if !last_commit >= 0 then
          let e = Vec.get t.archive !last_commit in
          match e.record with
          | Wal.Commit { op; meta; _ } | Wal.Checkpoint { op; meta; _ } ->
              (op, e.lsn, meta)
          | _ -> assert false
        else (t.init_op, t.init_lsn, t.init_meta)
      in
      let now = Clock.now t.clock in
      let id = t.next_id in
      t.next_id <- id + 1;
      let n =
        {
          id;
          link = Net.create ~prng:(Prng.split prng) profile;
          ack_link =
            Net.create ~prng:(Prng.split prng) { profile with partitions = [] };
          log_disk =
            Disk_model.create
              ~transfer_ns:(Disk_model.transfer_ns_of_page_size t.page_size)
              ~n_disks:1 t.clock;
          log_bytes = 0;
          pages;
          total_pages = total;
          free;
          applied_seq;
          committed_op;
          committed_lsn;
          meta;
          alive = true;
          durable_ns = Vec.create ~dummy:0;
          ack_ns = Vec.create ~dummy:0;
        }
      in
      for _ = 1 to applied_seq do
        Vec.push n.durable_ns now;
        Vec.push n.ack_ns now
      done;
      ignore (ship_tail t n ~from:applied_seq ~start_cursor:now : int * int);
      t.nodes <- Array.append t.nodes [| n |];
      Counter.incr t.stats.c_rejoin_forks;
      Counter.add t.stats.c_rejoin_trunc truncated_records;
      Counter.add t.stats.c_rejoin_pages !copied;
      Rejoined { fork_lsn; truncated_records; pages_copied = !copied }

(* ---------------------- retention & catch-up ------------------------ *)

let trim_archive t ~below_lsn =
  if Vec.length t.archive = 0 then 0
  else begin
    let lo = (Vec.get t.archive 0).lsn in
    let nb =
      min (Vec.length t.archive) (max t.base_seq (below_lsn - lo + 1))
    in
    let trimmed = nb - t.base_seq in
    t.base_seq <- nb;
    Counter.add t.stats.c_trimmed trimmed;
    trimmed
  end

let detach_replica _t n = n.alive <- false

let catch_up_via_log (t : t) n =
  Wal.flush t.wal;
  let vlen = Vec.length n.durable_ns in
  if vlen < t.base_seq then `Retention_exceeded
  else begin
    let t0 = Clock.now t.clock in
    let shipped, cursor = ship_tail t n ~from:vlen ~start_cursor:t0 in
    ignore (sync t n ~horizon:max_int : int);
    n.alive <- true;
    Counter.add t.stats.c_catchup_log shipped;
    `Ok (shipped, if shipped = 0 then 0 else cursor - t0)
  end

let catch_up_via_snapshot (t : t) n ~snapshot =
  Wal.flush t.wal;
  let t0 = Clock.now t.clock in
  let total, free_list = Shadow.snapshot_alloc snapshot in
  let cursor = ref t0 in
  let pages_shipped = ref 0 in
  n.pages <- Vec.create ~dummy:None;
  Vec.push n.pages None;
  Hashtbl.reset n.free;
  List.iter (fun id -> Hashtbl.replace n.free id ()) free_list;
  n.total_pages <- total;
  for id = 1 to total do
    if Hashtbl.mem n.free id then Vec.push n.pages None
    else
      match Shadow.read snapshot id with
      | Some b ->
          cursor := Net.deliver n.link ~send:!cursor ~bytes:(Bytes.length b);
          Vec.push n.pages (Some b);
          incr pages_shipped
      | None -> Vec.push n.pages (Some (Bytes.make t.page_size '\000'))
  done;
  n.committed_op <- Shadow.snapshot_op snapshot;
  n.committed_lsn <- Shadow.snapshot_lsn snapshot;
  n.meta <- Shadow.snapshot_meta snapshot;
  let cut_seq =
    if Vec.length t.archive = 0 then 0
    else
      let lo = (Vec.get t.archive 0).lsn in
      min (Vec.length t.archive)
        (max 0 (Shadow.snapshot_lsn snapshot - lo + 1))
  in
  if cut_seq < t.base_seq then
    invalid_arg "Replica.catch_up_via_snapshot: snapshot below archive retention";
  n.applied_seq <- cut_seq;
  n.durable_ns <- Vec.create ~dummy:0;
  n.ack_ns <- Vec.create ~dummy:0;
  for _ = 1 to cut_seq do
    Vec.push n.durable_ns !cursor;
    Vec.push n.ack_ns !cursor
  done;
  let tail, cursor' = ship_tail t n ~from:cut_seq ~start_cursor:!cursor in
  ignore (sync t n ~horizon:max_int : int);
  n.alive <- true;
  Counter.add t.stats.c_catchup_pages !pages_shipped;
  Counter.add t.stats.c_catchup_log tail;
  (!pages_shipped, tail, (if tail = 0 then !cursor else cursor') - t0)

(* ------------------------- observability ---------------------------- *)

let kv t =
  let s = t.stats in
  let base =
    List.map Counter.kv
      [
        s.c_shipped;
        s.c_shipped_bytes;
        s.c_semi_waits;
        s.c_failovers;
        s.c_failover_trunc;
        s.c_rebaselined;
        s.c_rejoin_forks;
        s.c_rejoin_trunc;
        s.c_rejoin_pages;
        s.c_trimmed;
        s.c_catchup_log;
        s.c_catchup_pages;
      ]
  in
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  Array.iter
    (fun n ->
      List.iter
        (fun (k, v) ->
          if not (Hashtbl.mem tbl k) then order := k :: !order;
          Hashtbl.replace tbl k (v + try Hashtbl.find tbl k with Not_found -> 0))
        (Net.kv n.link @ Net.kv n.ack_link))
    t.nodes;
  base @ List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !order
