(* Simulated one-way network link: latency + jitter + per-byte cost,
   transient loss cured by retransmission, probabilistic reordering,
   partition windows.  Deliveries are resequenced in order, so loss and
   reordering surface as head-of-line latency (TCP-like).  All draws
   come from the link's private PRNG substream. *)

module Prng = Fpb_workload.Prng
module Counter = Fpb_obs.Counter
module Histogram = Fpb_obs.Histogram

type profile = {
  base_ns : int;
  jitter_ns : int;
  byte_ns : int;
  loss : float;
  rto_ns : int;
  reorder_p : float;
  reorder_extra_ns : int;
  partitions : (int * int) list;
}

let default_profile =
  {
    base_ns = 100_000;
    jitter_ns = 20_000;
    byte_ns = 1;
    loss = 0.;
    rto_ns = 1_000_000;
    reorder_p = 0.;
    reorder_extra_ns = 0;
    partitions = [];
  }

type stats = {
  msgs : Counter.t;
  bytes : Counter.t;
  drops : Counter.t;
  retransmits : Counter.t;
  reorders : Counter.t;
  partition_waits : Counter.t;
}

type t = {
  prng : Prng.t;
  mutable profile : profile;
  mutable last_delivery : int;
  delay : Histogram.t;
  stats : stats;
}

let create ~prng profile =
  {
    prng;
    profile;
    last_delivery = 0;
    delay = Histogram.make "net.delay_ns";
    stats =
      {
        msgs = Counter.make "net.msgs";
        bytes = Counter.make "net.bytes";
        drops = Counter.make "net.drops";
        retransmits = Counter.make "net.retransmits";
        reorders = Counter.make "net.reorders";
        partition_waits = Counter.make "net.partition_waits";
      };
  }

let profile t = t.profile
let set_profile t p = t.profile <- p

(* First instant at or after [at] outside every partition window. *)
let rec escape_partitions t at =
  match
    List.find_opt (fun (a, b) -> a <= at && at < b) t.profile.partitions
  with
  | Some (_, b) ->
      Counter.incr t.stats.partition_waits;
      escape_partitions t b
  | None -> at

let deliver t ~send ~bytes =
  let p = t.profile in
  Counter.incr t.stats.msgs;
  Counter.add t.stats.bytes bytes;
  (* Retransmit until a transmission survives loss; each attempt first
     waits out any partition window it falls into. *)
  let rec attempt at n =
    let at = escape_partitions t at in
    if p.loss > 0. && Prng.float t.prng < p.loss then begin
      Counter.incr t.stats.drops;
      Counter.incr t.stats.retransmits;
      attempt (at + p.rto_ns) (n + 1)
    end
    else begin
      let jitter = if p.jitter_ns > 0 then Prng.int t.prng (p.jitter_ns + 1) else 0 in
      let extra =
        if p.reorder_p > 0. && Prng.float t.prng < p.reorder_p then begin
          Counter.incr t.stats.reorders;
          p.reorder_extra_ns
        end
        else 0
      in
      at + p.base_ns + jitter + (bytes * p.byte_ns) + extra
    end
  in
  let raw = attempt send 0 in
  (* in-order resequencing: nothing overtakes its predecessor *)
  let dlv = max raw t.last_delivery in
  t.last_delivery <- dlv;
  Histogram.record t.delay (dlv - send);
  dlv

let delay t = t.delay
let stats t = t.stats

let kv t =
  List.map Counter.kv
    [
      t.stats.msgs; t.stats.bytes; t.stats.drops; t.stats.retransmits;
      t.stats.reorders; t.stats.partition_waits;
    ]
