(** WAL log-shipping replication: primary/replica groups over faulty
    links, semi-sync commits, failover with zero-committed-loss,
    divergence detection, snapshot catch-up.

    A {!t} (replication group) wraps an attached {!Fpb_wal.Wal}: it
    installs the WAL's durable-record observer — every record a
    successful log flush makes durable is shipped, as its framed bytes,
    over a per-replica {!Net} link — and the commit barrier, which under
    [Semi_sync k] advances the simulated clock until the k-th replica
    ack covers the commit's LSN (so [wal.commit_latency] shows the true
    cost of the durability mode under an open-loop workload).

    Each replica node models its own log device: a delivered record is
    appended to the node's log disk ({!Fpb_storage.Disk_model}) and
    acked, by LSN, once durable there.  Applied state (page images,
    allocator map, committed cursor) is materialised by redo of whole
    committed operations only — records beyond the last delivered
    commit stay staged, so a promotion never exposes uncommitted bytes
    and "truncate the unacked suffix" is exactly dropping the staged
    tail.

    {2 Failover}

    Kill the primary at an arbitrary byte/record boundary (arm
    {!Fpb_wal.Wal.set_crash_at_byte} or call
    {!Fpb_wal.Wal.crash_now}, then {!kill}); {!promote} syncs every
    replica to the kill instant, picks the most advanced one, charges
    the failure-detection timeout, and materialises a full node from its
    applied state: a fresh {!Fpb_storage.Page_store}, data disks,
    {!Fpb_storage.Buffer_pool} and an attached {!Fpb_wal.Wal} whose LSN
    sequence continues the shipped history ([first_lsn]) — which is what
    makes a rejoining old primary's divergent suffix detectable by
    (LSN, CRC) comparison.  The caller rebuilds its index handle from
    the returned metadata ({!Fpb_btree_common.Index_sig.restore_meta});
    {!resume} re-attaches the surviving replicas to the new primary,
    re-shipping them the delta they missed.

    Because every link delivers in order, each replica's durable record
    set is a prefix of the shipped stream; the most advanced replica's
    prefix therefore contains every commit any replica ever acked — the
    zero-committed-loss property under [Semi_sync k], at every possible
    kill point.

    {2 Catch-up}

    A lagging or rejoining replica catches up by log re-shipping
    ({!catch_up_via_log}) while the archive still holds the records it
    needs; once retention ({!trim_archive}, driven by
    {!Fpb_snapshot.Shadow.retention_lsn}) has released them, it
    bootstraps from a consistent snapshot instead
    ({!catch_up_via_snapshot}): frozen pages shipped page-by-page, then
    log replay from the snapshot's cut LSN. *)

module Wal = Fpb_wal.Wal

(** Per-commit durability mode. *)
type mode =
  | Async  (** primary acks locally at log-flush completion *)
  | Semi_sync of int
      (** wait for that many replica acks of the commit's LSN (clamped
          to the number of live replicas) *)

type config = {
  mode : mode;
  window : int;  (** bounded in-flight window, records (backpressure) *)
  ack_bytes : int;  (** ack frame size on the wire *)
  detect_timeout_ns : int;
      (** failure-detector timeout charged between the kill and the
          promotion (the unavoidable floor of the blackout window) *)
  n_disks : int;  (** data disks a promoted node gets *)
  pool_pages : int;  (** buffer-pool capacity a promoted node gets *)
  group_commit_bytes : int;  (** WAL attach parameter for promoted nodes *)
  log_mirrors : int;
  log_stripes : int;
}

(** [Semi_sync 1], window 64, 24-byte acks, 5 ms detection, 2 data
    disks, 96-page pool, per-commit flush, single unmirrored log. *)
val default_config : config

type node
type t

(** [create ~config ~prng ~profiles (wal, pool)] builds a group shipping
    [wal]'s records to one replica per entry of [profiles] (each entry
    is the forward-link profile; acks return over a link with the same
    profile minus its partitions).  Every replica bootstraps from the
    primary's current state — the moral equivalent of provisioning from
    a base backup — so shipping only ever covers records sealed after
    this call.  [prng] is split per link.  Must not be called
    mid-operation; flushes the WAL first. *)
val create :
  config:config ->
  prng:Fpb_workload.Prng.t ->
  profiles:Net.profile list ->
  Wal.t * Fpb_storage.Buffer_pool.t ->
  t

(** Detach the observer and barrier from the primary WAL. *)
val detach : t -> unit

val config : t -> config
val n_nodes : t -> int
val node : t -> int -> node
val node_id : node -> int
val node_alive : node -> bool

(** Forward link of a node, e.g. to tighten or cut its profile. *)
val node_link : node -> Net.t

(** Bring the node's applied state up to every whole committed operation
    durable on it by [horizon] (default: now); returns its committed
    operation number after the sync. *)
val sync_node : t -> ?horizon:int -> node -> int

val node_committed_op : node -> int
val node_committed_lsn : node -> int

(** Highest operation number whose commit record (and whole batch) is
    durable on the node by [horizon] — pure inspection, applies
    nothing. *)
val node_durable_op : t -> node -> horizon:int -> int

(** Highest operation number acknowledged to clients by [horizon] under
    the group's mode: for [Async], the last commit record shipped (i.e.
    primary-durable) by then; for [Semi_sync k], the last with k replica
    acks in by then. *)
val acked_op : t -> horizon:int -> int

(** {2 Failover} *)

(** Freeze the group at the primary's death: the current simulated time
    becomes the horizon; nothing ships afterwards.  Idempotent. *)
val kill : t -> unit

val killed_at : t -> int option

type promotion = {
  node_id : int;
  committed_op : int;  (** operation number the new primary starts from *)
  committed_lsn : int;
  meta : int list;  (** index root metadata to restore a handle from *)
  truncated_records : int;
      (** staged (durable-but-uncommitted) records dropped — the unacked
          suffix *)
  store : Fpb_storage.Page_store.t;
  disks : Fpb_storage.Disk_model.t;
  pool : Fpb_storage.Buffer_pool.t;
  wal : Wal.t;  (** attached with [first_lsn = committed_lsn + 1] *)
}

(** Promote the most advanced live replica (or [node]): sync every
    replica to the kill horizon, drop the chosen node's staged suffix,
    charge [detect_timeout_ns], and materialise store, disks, pool and a
    freshly attached WAL from its applied state.  The caller rebuilds
    the index handle from [meta] (free any pages the handle's [create]
    allocated before calling [restore_meta], so the replicated page
    space stays exact).  Requires {!kill} first and at least one live
    replica. *)
val promote : ?node:node -> t -> promotion

(** [resume t p] returns a new group on the promoted WAL, shipping to
    the surviving replicas: each is first re-baselined to the promotion
    point — the committed records it missed are re-applied straight from
    the archive (counted under [replica.rebaselined_records]) and its
    staged suffix dropped.  Counters are shared with [t], so totals
    aggregate across the failover. *)
val resume : t -> promotion -> t

(** {2 Divergence detection (old-primary rejoin)} *)

type rejoin_result =
  | Rejoined of { fork_lsn : int; truncated_records : int; pages_copied : int }
      (** the old primary's durable log forked from the surviving
          history at [fork_lsn]; its [truncated_records] records at or
          beyond the fork were discarded and [pages_copied] pages
          re-shipped from the new primary's committed state *)
  | Snapshot_required of { fork_lsn : int }
      (** the fork lies below the archive's retention floor: delta
          re-ship is impossible, bootstrap from a snapshot instead *)

(** [rejoin t ~old_pool ~old_wal ~prng] re-admits a crashed-and-locally-
    recovered old primary as a replica of the current group.  Its
    durable records ({!Fpb_wal.Wal.durable_records}) are compared, by
    (LSN, CRC of the framed record), against the shipped history —
    walking the group chain across failovers — to find the fork point;
    on [Rejoined] the node joins the group (pages below the fork kept
    from the old primary's own store, pages the divergent suffix or the
    new history touched re-copied from the new primary).  [old_wal] must
    not be in the crashed state (run {!Fpb_wal.Wal.recover} first). *)
val rejoin :
  t ->
  old_pool:Fpb_storage.Buffer_pool.t ->
  old_wal:Wal.t ->
  prng:Fpb_workload.Prng.t ->
  ?profile:Net.profile ->
  unit ->
  rejoin_result

(** {2 Retention and catch-up} *)

(** Drop archive entries with LSN at or below [below_lsn] (e.g.
    {!Fpb_snapshot.Shadow.retention_lsn} after a flip): the shipping
    archive releases what the WAL's own retention released.  A replica
    whose replay point falls below the floor can no longer catch up by
    log re-shipping. *)
val trim_archive : t -> below_lsn:int -> int

(** Mark a replica dead (stop shipping to it) without failover — models
    a replica that goes dark and must later catch up. *)
val detach_replica : t -> node -> unit

(** Re-ship and apply every archive record the detached node is missing,
    serially over its link; revives the node.  Returns the records
    re-shipped and the simulated time the catch-up took, or
    [`Retention_exceeded] if the archive no longer holds the records. *)
val catch_up_via_log :
  t -> node -> [ `Ok of int * int | `Retention_exceeded ]

(** Bootstrap the detached node from a consistent snapshot: every frozen
    page is read ({!Fpb_snapshot.Shadow.read}, charged) and shipped over
    the node's link, the node's allocator and committed cursor reset to
    the snapshot's cut, then the archive tail after the snapshot's cut
    LSN is re-shipped and applied as in {!catch_up_via_log}.  Revives
    the node.  Returns (pages shipped, tail records, simulated ns). *)
val catch_up_via_snapshot :
  t -> node -> snapshot:Fpb_snapshot.Shadow.snapshot -> int * int * int

(** {2 Observability} *)

(** Semi-sync ack-wait distribution ([replica.ack_wait_ns]): extra
    simulated time each commit barrier blocked beyond local
    durability. *)
val ack_wait : t -> Fpb_obs.Histogram.t

(** [replica.*] counters plus the [net.*] counters summed over every
    link of the group. *)
val kv : t -> (string * int) list
