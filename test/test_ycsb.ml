(* YCSB workload suite tests: distribution shape against closed-form
   targets, mix proportion convergence, and the open-loop queueing
   semantics of [Arrival] (latency measured from arrival, so an
   overloaded schedule must show p99 far above the service time). *)

open Fpb_workload

let p h q = Fpb_obs.Histogram.percentile h q

(* Prng.float in [0, 1); Prng.exponential positive with the right mean. *)
let test_float_exponential () =
  let rng = Prng.create 17 in
  for _ = 1 to 10_000 do
    let f = Prng.float rng in
    if f < 0. || f >= 1. then Alcotest.failf "float out of [0,1): %f" f
  done;
  let mean = 5.0 and n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let x = Prng.exponential rng ~mean in
    if x < 0. then Alcotest.failf "negative exponential draw %f" x;
    sum := !sum +. x
  done;
  let emp = !sum /. float_of_int n in
  if abs_float (emp -. mean) > 0.05 *. mean then
    Alcotest.failf "exponential mean %f, want ~%f" emp mean

(* The power-law sampler has the closed-form CDF
   P(rank < r) = (r/n)^(1-theta); check the empirical CDF against it,
   and that head frequencies are monotone non-increasing. *)
let test_zipf_shape () =
  let n = 1000 and theta = 0.99 and draws = 200_000 in
  let rng = Prng.create 23 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let r = Keygen.zipf_rank rng ~n ~theta in
    counts.(r) <- counts.(r) + 1
  done;
  for r = 1 to 4 do
    if counts.(r) > counts.(r - 1) then
      Alcotest.failf "head not monotone: count(%d)=%d > count(%d)=%d" r
        counts.(r) (r - 1) counts.(r - 1)
  done;
  List.iter
    (fun r ->
      let below = ref 0 in
      for i = 0 to r - 1 do below := !below + counts.(i) done;
      let emp = float_of_int !below /. float_of_int draws in
      let target = (float_of_int r /. float_of_int n) ** (1. -. theta) in
      if abs_float (emp -. target) > 0.01 then
        Alcotest.failf "CDF at rank %d: empirical %.4f, target %.4f" r emp
          target)
    [ 1; 10; 100; 1000 ]

(* Higher theta concentrates more mass on the hottest 1% of ranks. *)
let test_zipf_theta_orders_skew () =
  let n = 10_000 and draws = 50_000 in
  let top1 theta =
    let rng = Prng.create 29 in
    let hot = ref 0 in
    for _ = 1 to draws do
      if Keygen.zipf_rank rng ~n ~theta < n / 100 then incr hot
    done;
    float_of_int !hot /. float_of_int draws
  in
  let low = top1 0.5 and mid = top1 0.8 and high = top1 0.99 in
  if not (low < mid && mid < high) then
    Alcotest.failf "top-1%% mass not ordered by theta: %.3f %.3f %.3f" low mid
      high;
  (* Closed form: (0.01)^(1-theta) = 0.955 at theta = 0.99. *)
  if high < 0.9 then Alcotest.failf "theta 0.99 head mass %.3f, want > 0.9" high

(* The FNV scramble is deterministic, lands in [0, n), and spreads the
   hot head ranks across the whole position space. *)
let test_scramble () =
  let n = 1000 in
  let images = Array.init 100 (fun r -> Keygen.scramble ~n r) in
  Array.iteri
    (fun r img ->
      if img < 0 || img >= n then Alcotest.failf "scramble(%d) = %d" r img;
      if img <> Keygen.scramble ~n r then Alcotest.failf "not deterministic")
    images;
  let distinct = List.sort_uniq compare (Array.to_list images) in
  if List.length distinct < 90 then
    Alcotest.failf "only %d distinct images of 100 ranks"
      (List.length distinct);
  let lo = Array.fold_left min max_int images
  and hi = Array.fold_left max 0 images in
  if hi - lo < n / 2 then
    Alcotest.failf "hot ranks not spread: images span [%d, %d] of %d" lo hi n

(* [Latest] anchors at the newest position: almost all draws land in
   the top 1% of the key-age array. *)
let test_latest_head () =
  let n = 1000 and draws = 10_000 in
  let rng = Prng.create 31 in
  let dist = Keygen.Latest { theta = Keygen.default_theta } in
  let hot = ref 0 in
  for _ = 1 to draws do
    if Keygen.draw_pos dist rng ~n >= n - (n / 100) then incr hot
  done;
  let frac = float_of_int !hot /. float_of_int draws in
  if frac < 0.9 then Alcotest.failf "latest head mass %.3f, want > 0.9" frac

(* Under mix D the read side keeps up with the insert frontier: late in
   the run, most reads target keys that were inserted during the run
   rather than bulk-loaded. *)
let test_latest_tracks_frontier () =
  let rng = Prng.create 37 in
  let pairs = Keygen.bulk_pairs rng 2_000 in
  let loaded = Hashtbl.create 4096 in
  Array.iter (fun (k, _) -> Hashtbl.replace loaded k ()) pairs;
  let gen = Mix.generator ~seed:41 Mix.d pairs in
  let fresh_reads = ref 0 and late_reads = ref 0 in
  for i = 1 to 4_000 do
    match Mix.next gen with
    | Mix.Read k when i > 2_000 ->
        incr late_reads;
        if not (Hashtbl.mem loaded k) then incr fresh_reads
    | _ -> ()
  done;
  Alcotest.(check bool) "inserts grew the key set" true
    (Mix.live_keys gen > 2_000);
  let frac = float_of_int !fresh_reads /. float_of_int (max 1 !late_reads) in
  if frac < 0.5 then
    Alcotest.failf "only %.2f of late reads hit run-inserted keys" frac

(* Drawn proportions converge to the mix percentages. *)
let test_mix_proportions () =
  let rng = Prng.create 43 in
  let pairs = Keygen.bulk_pairs rng 5_000 in
  let check mix =
    let gen = Mix.generator ~seed:47 mix pairs in
    let n = 20_000 in
    for _ = 1 to n do ignore (Mix.next gen) done;
    let r, u, i, s, m = Mix.drawn_counts gen in
    let pct c = 100. *. float_of_int c /. float_of_int n in
    List.iter
      (fun (kind, got, want) ->
        if abs_float (got -. float_of_int want) > 2. then
          Alcotest.failf "%s: %s drawn %.1f%%, mix says %d%%" mix.Mix.name kind
            got want)
      [
        ("read", pct r, mix.Mix.read);
        ("update", pct u, mix.Mix.update);
        ("insert", pct i, mix.Mix.insert);
        ("scan", pct s, mix.Mix.scan);
        ("rmw", pct m, mix.Mix.rmw);
      ]
  in
  List.iter check Mix.all

(* Open-loop semantics against a synthetic fixed-service-time op
   (1 ms), 4 clients, so capacity is exactly 4000 ops/s.

   Below saturation with fixed arrivals there is no queueing at all:
   recorded latency is exactly the service time.  At twice capacity the
   backlog grows linearly and recorded latency — measured from
   *arrival* — must dwarf the service time.  A closed-loop driver
   cannot show this difference; see docs/WORKLOADS.md. *)
let test_open_loop_queueing () =
  let service_ns = 1_000_000 in
  let run rate =
    let sim = Fpb_simmem.Sim.create () in
    Arrival.run ~sim ~n_clients:4 ~n_ops:2_000 ~rate_ops_per_s:rate
      ~discipline:Arrival.Fixed ~seed:7
      (fun ~client:_ ~seq:_ ->
        Fpb_simmem.Clock.advance sim.Fpb_simmem.Sim.clock service_ns)
  in
  let calm = run 1_000. in
  Alcotest.(check int) "no queueing below saturation" 0
    (Fpb_obs.Histogram.max_value calm.Arrival.queue_ns);
  Alcotest.(check int) "calm p99 = service time"
    (p calm.Arrival.service_ns 99.)
    (p calm.Arrival.latency 99.);
  let hot = run 8_000. in
  if p hot.Arrival.latency 99. < 50 * p hot.Arrival.service_ns 99. then
    Alcotest.failf "overloaded p99 %d ns not >> service p99 %d ns"
      (p hot.Arrival.latency 99.)
      (p hot.Arrival.service_ns 99.);
  if hot.Arrival.max_backlog < 100 then
    Alcotest.failf "overloaded backlog %d, want growth" hot.Arrival.max_backlog;
  (* Overloaded makespan is set by capacity, not the offered rate. *)
  let want = 2_000 * service_ns / 4 in
  if abs (hot.Arrival.makespan_ns - want) > want / 10 then
    Alcotest.failf "makespan %d ns, want ~%d ns" hot.Arrival.makespan_ns want

(* Every op is dispatched exactly once, in per-client FIFO order. *)
let test_open_loop_dispatches_all () =
  let sim = Fpb_simmem.Sim.create () in
  let seen = Array.make 500 0 in
  let stats =
    Arrival.run ~sim ~n_clients:3 ~n_ops:500 ~rate_ops_per_s:100_000. ~seed:11
      (fun ~client ~seq ->
        Alcotest.(check int) "round-robin client" (seq mod 3) client;
        seen.(seq) <- seen.(seq) + 1)
  in
  Array.iteri
    (fun j c -> if c <> 1 then Alcotest.failf "op %d dispatched %d times" j c)
    seen;
  Alcotest.(check int) "ops counted" 500 stats.Arrival.ops

(* Batch server against the same synthetic oracle: ONE server whose
   per-dispatch service time is a fixed 1 ms however many ops the batch
   holds, so capacity is exactly [batch * 1000] ops/s and every queueing
   figure has a closed form under fixed arrivals. *)
let batch_oracle ~rate ~batch ~batch_wait_ns ?(n_ops = 2_000) ?on_batch () =
  let service_ns = 1_000_000 in
  let sim = Fpb_simmem.Sim.create () in
  Batch.run ~sim ~n_ops ~rate_ops_per_s:rate ~discipline:Arrival.Fixed ~seed:7
    ~batch ~batch_wait_ns (fun seqs ->
      (match on_batch with Some f -> f seqs | None -> ());
      Fpb_simmem.Clock.advance sim.Fpb_simmem.Sim.clock service_ns)

(* Below saturation, size-triggered: at 500 ops/s (2 ms gaps) a batch of
   4 fills in exactly 3 gaps, so the head waits exactly 6 ms and every
   dispatch is full. *)
let test_batch_size_trigger () =
  let s =
    batch_oracle ~rate:500. ~batch:4 ~batch_wait_ns:10_000_000 ()
  in
  Alcotest.(check int) "all ops served" 2_000 s.Batch.ops;
  Alcotest.(check int) "full batches" 500 s.Batch.batches;
  Alcotest.(check int)
    "head waits exactly 3 arrival gaps" 6_000_000
    (Fpb_obs.Histogram.max_value s.Batch.wait_ns);
  Alcotest.(check int)
    "freshest op never waits" 0
    (Fpb_obs.Histogram.min_value s.Batch.wait_ns)

(* Below saturation, timeout-triggered: with the size trigger out of
   reach the oldest op waits exactly [batch_wait_ns], and the batch
   holds just the ops that arrived inside the window. *)
let test_batch_timeout_trigger () =
  let s =
    batch_oracle ~rate:500. ~batch:64 ~batch_wait_ns:3_000_000 ()
  in
  Alcotest.(check int) "all ops served" 2_000 s.Batch.ops;
  Alcotest.(check int) "two ops arrive per 3 ms window" 1_000 s.Batch.batches;
  Alcotest.(check int)
    "head waits exactly the timeout" 3_000_000
    (Fpb_obs.Histogram.max_value s.Batch.wait_ns)

(* Around capacity: at 8000 ops/s a batch-8 server (capacity 8000)
   keeps the backlog bounded and finishes with the arrival schedule,
   while batch 4 (capacity 4000) queues for the whole run and its
   makespan is set by service capacity, not the offered rate. *)
let test_batch_capacity () =
  let keeps_up = batch_oracle ~rate:8_000. ~batch:8 ~batch_wait_ns:10_000_000 () in
  if keeps_up.Batch.max_backlog > 32 then
    Alcotest.failf "backlog %d at capacity, want bounded"
      keeps_up.Batch.max_backlog;
  let hot = batch_oracle ~rate:8_000. ~batch:4 ~batch_wait_ns:10_000_000 () in
  if hot.Batch.max_backlog < 100 then
    Alcotest.failf "overloaded backlog %d, want growth" hot.Batch.max_backlog;
  let want = 2_000 / 4 * 1_000_000 in
  if abs (hot.Batch.makespan_ns - want) > want / 10 then
    Alcotest.failf "overloaded makespan %d ns, want ~%d ns"
      hot.Batch.makespan_ns want;
  if p hot.Batch.latency 99. < 50 * p hot.Batch.service_ns 99. then
    Alcotest.failf "overloaded p99 %d ns not >> service p99 %d ns"
      (p hot.Batch.latency 99.)
      (p hot.Batch.service_ns 99.)

(* Every op is dispatched exactly once, batches in arrival order. *)
let test_batch_dispatches_all () =
  let seen = Array.make 500 0 in
  let last = ref (-1) in
  let s =
    batch_oracle ~rate:100_000. ~batch:8 ~batch_wait_ns:1_000_000 ~n_ops:500
      ~on_batch:(fun seqs ->
        Array.iter
          (fun seq ->
            if seq <= !last then
              Alcotest.failf "seq %d after %d: not arrival order" seq !last;
            last := seq;
            seen.(seq) <- seen.(seq) + 1)
          seqs)
      ()
  in
  Array.iteri
    (fun j c -> if c <> 1 then Alcotest.failf "op %d dispatched %d times" j c)
    seen;
  Alcotest.(check int) "ops counted" 500 s.Batch.ops

let suite =
  [
    Alcotest.test_case "prng float and exponential" `Quick
      test_float_exponential;
    Alcotest.test_case "zipf matches closed-form CDF" `Quick test_zipf_shape;
    Alcotest.test_case "zipf theta orders skew" `Quick
      test_zipf_theta_orders_skew;
    Alcotest.test_case "scramble deterministic and spreading" `Quick
      test_scramble;
    Alcotest.test_case "latest is frontier-anchored" `Quick test_latest_head;
    Alcotest.test_case "latest tracks insert frontier" `Quick
      test_latest_tracks_frontier;
    Alcotest.test_case "mix proportions converge" `Quick test_mix_proportions;
    Alcotest.test_case "open loop records queueing delay" `Quick
      test_open_loop_queueing;
    Alcotest.test_case "open loop dispatches every op once" `Quick
      test_open_loop_dispatches_all;
    Alcotest.test_case "batch server: size trigger fills batches" `Quick
      test_batch_size_trigger;
    Alcotest.test_case "batch server: timeout caps the head wait" `Quick
      test_batch_timeout_trigger;
    Alcotest.test_case "batch server: capacity scales with the batch" `Quick
      test_batch_capacity;
    Alcotest.test_case "batch server dispatches every op once" `Quick
      test_batch_dispatches_all;
  ]
