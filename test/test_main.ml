(* Entry point: all suites.  `dune runtest` runs everything. *)

let () =
  Alcotest.run "fpbtree"
    [
      ("obs", Test_obs.suite);
      ("simmem", Test_simmem.suite);
      ("storage", Test_storage.suite);
      ("wal", Test_wal.suite);
      ("snapshot", Test_snapshot.suite);
      ("replica", Test_replica.suite);
      ("faults", Test_faults.suite);
      ("tuning", Test_tuning.suite);
      ("workload", Test_workload.suite);
      ("ycsb", Test_ycsb.suite);
      ("overload", Test_overload.suite);
      ("indexes", Test_indexes.suite);
      ("core-extra", Test_core_extra.suite);
      ("dbsim", Test_dbsim.suite);
      ("varkey", Test_varkey.suite);
      ("experiments", Test_experiments.suite);
      ("properties", Test_properties.suite);
    ]
