(* Tests for the shadow-paging checkpoint & snapshot subsystem: the
   indirection-table / superblock codecs, generation fallback past
   damaged metadata, frozen snapshot reads beside live updates, the
   bounded-replay guarantee, and a crash-at-every-flip-boundary
   property mirroring the WAL's recovery-prefix property. *)

open Fpb_simmem
open Fpb_btree_common
open Fpb_wal
open Fpb_snapshot
module X = Fpb_experiments

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- table / superblock codec --- *)

let sample_table =
  {
    Page_map.gen = 7;
    entries =
      Array.init 9 (fun id ->
          if id = 0 then { Page_map.disk = -1; phys = -1; lsn = 0 }
          else { Page_map.disk = id land 1; phys = 100 + id; lsn = 3 * id });
    marks = [| 4096; 0; 123 |];
    alloc = (8, [ 6; 3 ]);
    op = 42;
    meta = [ 5; -1; 1 lsl 30 ];
  }

let test_table_roundtrip () =
  let blob = Page_map.encode_table sample_table in
  match Page_map.decode_table blob ~len:(Bytes.length blob) with
  | None -> Alcotest.fail "table blob failed to decode"
  | Some tb ->
      check_int "gen" sample_table.Page_map.gen tb.Page_map.gen;
      check_int "op" sample_table.Page_map.op tb.Page_map.op;
      Alcotest.(check (list int)) "meta" sample_table.Page_map.meta
        tb.Page_map.meta;
      check_bool "marks" true (sample_table.Page_map.marks = tb.Page_map.marks);
      check_bool "alloc" true (sample_table.Page_map.alloc = tb.Page_map.alloc);
      check_bool "entries" true
        (sample_table.Page_map.entries = tb.Page_map.entries)

let test_table_rejects_damage () =
  let blob = Page_map.encode_table sample_table in
  let len = Bytes.length blob in
  (* any flipped body byte must fail the trailing CRC *)
  for off = 0 to len - 1 do
    let b = Bytes.copy blob in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
    if Page_map.decode_table b ~len <> None then
      Alcotest.failf "bit flip at byte %d accepted" off
  done;
  (* a truncated prefix must be rejected, not mis-framed *)
  for cut = 0 to len - 1 do
    if Page_map.decode_table blob ~len:cut <> None then
      Alcotest.failf "truncation to %d bytes accepted" cut
  done

(* --- persistence + generation fallback (Page_map level) --- *)

(* Two generations written through the dual-slot protocol; rotting the
   newer generation's superblock (or table slot) must make [load] step
   back to the older one, counting the fallback. *)
let write_gen map tb =
  let blob = Page_map.encode_table tb in
  let slot = tb.Page_map.gen land 1 in
  Page_map.write_table map ~slot blob;
  Page_map.write_superblock map ~gen:tb.Page_map.gen ~slot
    ~table_len:(Bytes.length blob) ~crc:(Page_map.table_crc blob) ()

let two_gens () =
  let map = Page_map.create ~page_size:4096 (Clock.create ()) in
  let g1 = { sample_table with Page_map.gen = 1; op = 10 } in
  let g2 = { sample_table with Page_map.gen = 2; op = 20 } in
  write_gen map g1;
  write_gen map g2;
  map

let test_load_newest () =
  let map = two_gens () in
  match Page_map.load map with
  | Some (tb, fallbacks) ->
      check_int "newest gen" 2 tb.Page_map.gen;
      check_int "no fallback" 0 fallbacks
  | None -> Alcotest.fail "load found nothing"

let test_superblock_fallback () =
  let map = two_gens () in
  Page_map.inject_damage map (Page_map.Superblock (2 land 1))
    (Page_map.Flip_bit { off = 9; bit = 3 });
  match Page_map.load map with
  | Some (tb, fallbacks) ->
      check_int "fell back to prior gen" 1 tb.Page_map.gen;
      check_int "prior gen's op" 10 tb.Page_map.op;
      check_bool "fallback counted" true (fallbacks >= 1)
  | None -> Alcotest.fail "fallback generation not found"

let test_table_slot_fallback () =
  let map = two_gens () in
  Page_map.inject_damage map (Page_map.Table (2 land 1))
    (Page_map.Zero_span { off = 8; len = 32 });
  match Page_map.load map with
  | Some (tb, fallbacks) ->
      check_int "fell back to prior gen" 1 tb.Page_map.gen;
      check_bool "fallback counted" true (fallbacks >= 1)
  | None -> Alcotest.fail "fallback generation not found"

let test_both_superblocks_dead () =
  let map = two_gens () in
  Page_map.inject_damage map (Page_map.Superblock 0)
    (Page_map.Zero_span { off = 0; len = 8 });
  Page_map.inject_damage map (Page_map.Superblock 1)
    (Page_map.Zero_span { off = 0; len = 8 });
  check_bool "nothing loadable" true (Page_map.load map = None)

(* --- system-level fixtures --- *)

let build_small kind n =
  let sys = X.Setup.make ~n_disks:2 ~pool_pages:64 ~page_size:4096 () in
  let rng = Fpb_workload.Prng.create 11 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
  let idx = X.Run.build sys kind pairs ~fill:0.8 in
  (sys, pairs, idx)

let key_set idx =
  let acc = ref [] in
  Index_sig.iter idx (fun k v -> acc := (k, v) :: !acc);
  List.sort compare !acc

let attach_shadow sys idx =
  let wal = Wal.attach ~meta:(Index_sig.meta idx) sys.X.Setup.pool in
  let shadow = Shadow.attach ~meta:(Index_sig.meta idx) wal sys.X.Setup.pool in
  (wal, shadow)

(* Apply [n] committed insert/delete operations drawn from [rng],
   mutating [model] alongside. *)
let run_ops idx wal rng pairs model ~first_op n =
  for i = 0 to n - 1 do
    let existing () =
      fst pairs.(Fpb_workload.Prng.int rng (Array.length pairs))
    in
    (match Fpb_workload.Prng.int rng 3 with
    | 0 ->
        let k = 1 + Fpb_workload.Prng.int rng 0x3FFFFFFE in
        let v = Fpb_workload.Prng.int rng 0xFFFF in
        ignore (Index_sig.insert idx k v);
        Hashtbl.replace model k v
    | 1 ->
        let k = existing () and v = Fpb_workload.Prng.int rng 0xFFFF in
        ignore (Index_sig.insert idx k v);
        Hashtbl.replace model k v
    | _ ->
        let k = existing () in
        ignore (Index_sig.delete idx k);
        Hashtbl.remove model k);
    Wal.commit wal ~op:(first_op + i) ~meta:(Index_sig.meta idx)
  done

(* --- frozen snapshot beside updates --- *)

let test_snapshot_frozen_scan () =
  let sys, pairs, idx = build_small X.Setup.Disk_first 400 in
  let wal, shadow = attach_shadow sys idx in
  let store = Fpb_storage.Buffer_pool.store sys.X.Setup.pool in
  let rng = Fpb_workload.Prng.create 23 in
  let model = Hashtbl.create 512 in
  Array.iter (fun (k, v) -> Hashtbl.replace model k v) pairs;
  run_ops idx wal rng pairs model ~first_op:1 30;
  Shadow.checkpoint_sync shadow ~meta:(Index_sig.meta idx);
  (* between operations the store's bytes ARE the committed state: copy
     them as the oracle for every frozen read *)
  let live = ref [] in
  Fpb_storage.Page_store.iter_live store (fun id -> live := id :: !live);
  let expected =
    List.map
      (fun id -> (id, Bytes.copy (Fpb_storage.Page_store.bytes store id)))
      !live
  in
  let snap = Shadow.open_at_checkpoint shadow in
  let frozen_gen = Shadow.snapshot_gen snap in
  (* updates and two further checkpoints proceed beside the snapshot *)
  run_ops idx wal rng pairs model ~first_op:31 40;
  Shadow.checkpoint_sync shadow ~meta:(Index_sig.meta idx);
  run_ops idx wal rng pairs model ~first_op:71 40;
  Shadow.checkpoint_sync shadow ~meta:(Index_sig.meta idx);
  check_bool "snapshot generation retained" true
    (List.mem frozen_gen (Shadow.retained_generations shadow));
  List.iter
    (fun (id, want) ->
      match Shadow.read snap id with
      | None -> Alcotest.failf "frozen page %d unreadable" id
      | Some got ->
          if not (Bytes.equal got want) then
            Alcotest.failf "frozen page %d changed under the snapshot" id)
    expected;
  (* CoW must actually have relocated overwritten pages *)
  let kv = Shadow.kv shadow in
  let g name = Option.value ~default:0 (List.assoc_opt name kv) in
  check_bool "remaps happened" true (g "pagemap.remaps" > 0);
  Shadow.close snap;
  (* with the pin dropped, the next flip retires the old generation *)
  Shadow.checkpoint_sync shadow ~meta:(Index_sig.meta idx);
  check_bool "pinned generation retired after close" true
    (not (List.mem frozen_gen (Shadow.retained_generations shadow)));
  Index_sig.check idx

(* --- damaged metadata at reboot (Shadow level) --- *)

let test_recover_falls_back_past_damage () =
  let sys, pairs, idx = build_small X.Setup.Disk_first 400 in
  let wal, shadow = attach_shadow sys idx in
  let rng = Fpb_workload.Prng.create 29 in
  let model = Hashtbl.create 512 in
  Array.iter (fun (k, v) -> Hashtbl.replace model k v) pairs;
  run_ops idx wal rng pairs model ~first_op:1 25;
  Shadow.checkpoint_sync shadow ~meta:(Index_sig.meta idx);
  run_ops idx wal rng pairs model ~first_op:26 25;
  Shadow.checkpoint_sync shadow ~meta:(Index_sig.meta idx);
  let live_gen = Shadow.current_generation shadow - 1 in
  Page_map.inject_damage (Shadow.map shadow)
    (Page_map.Superblock (live_gen land 1))
    (Page_map.Flip_bit { off = 13; bit = 0 });
  Wal.crash_now wal;
  let r = Shadow.recover shadow in
  check_int "all committed ops survive the fallback" 50 r.Wal.committed_ops;
  let kv = Shadow.kv shadow in
  let g name = Option.value ~default:0 (List.assoc_opt name kv) in
  check_bool "fallback counted" true (g "pagemap.superblock_fallbacks" >= 1);
  check_int "no plain recovery" 0 (g "ckpt.plain_recoveries");
  Index_sig.restore_meta idx r.Wal.meta;
  Index_sig.check idx;
  let want =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare
  in
  check_bool "key set matches the model" true (key_set idx = want)

(* --- bounded replay --- *)

let test_replay_bounded_by_flip () =
  (* the same committed workload, recovered with and without fuzzy
     checkpoints: the shadow cut must shrink the scanned record count *)
  let scanned fuzzy =
    let sys, pairs, idx = build_small X.Setup.Disk_first 400 in
    let wal = Wal.attach ~meta:(Index_sig.meta idx) sys.X.Setup.pool in
    let shadow =
      if fuzzy then Some (Shadow.attach ~meta:(Index_sig.meta idx) wal sys.X.Setup.pool)
      else None
    in
    let rng = Fpb_workload.Prng.create 31 in
    let model = Hashtbl.create 512 in
    Array.iter (fun (k, v) -> Hashtbl.replace model k v) pairs;
    for batch = 0 to 3 do
      run_ops idx wal rng pairs model ~first_op:(1 + (batch * 15)) 15;
      match shadow with
      | Some sh -> Shadow.checkpoint_sync sh ~meta:(Index_sig.meta idx)
      | None -> ()
    done;
    Wal.crash_now wal;
    let r =
      match shadow with
      | Some sh -> Shadow.recover sh
      | None -> Wal.recover wal
    in
    check_int "all ops recovered" 60 r.Wal.committed_ops;
    r.Wal.scanned_records
  in
  let full = scanned false in
  let bounded = scanned true in
  check_bool
    (Printf.sprintf "bounded replay scans fewer records (%d < %d)" bounded
       full)
    true
    (bounded < full)

(* --- crash at every flip boundary (property) --- *)

let prop_flip_boundary_recovery =
  Util.qtest ~count:2 "crash at every flip boundary recovers committed prefix"
    QCheck2.Gen.(1 -- 1000)
    (fun seed ->
      List.for_all
        (fun kind ->
          let rng = Fpb_workload.Prng.create seed in
          let pairs = Fpb_workload.Keygen.bulk_pairs rng 150 in
          let ops = X.Crashtest.gen_ops rng pairs 12 in
          List.for_all
            (fun crash_ckpt ->
              List.for_all
                (fun (crash_point, name) ->
                  let errs =
                    X.Crashtest.check_shadow_point kind pairs ops
                      ~ckpt_every:4 ~crash_ckpt ~crash_point
                      ~label:(Printf.sprintf "ckpt%d/%s" crash_ckpt name)
                  in
                  errs = [])
                X.Crashtest.shadow_crash_points)
            [ 1; 2; 3 ])
        [ X.Setup.Disk_first; X.Setup.Cache_first ])

let suite =
  [
    Alcotest.test_case "table codec round-trip" `Quick test_table_roundtrip;
    Alcotest.test_case "table codec rejects damage" `Quick
      test_table_rejects_damage;
    Alcotest.test_case "load picks the newest generation" `Quick
      test_load_newest;
    Alcotest.test_case "torn superblock falls back a generation" `Quick
      test_superblock_fallback;
    Alcotest.test_case "damaged table slot falls back a generation" `Quick
      test_table_slot_fallback;
    Alcotest.test_case "both superblocks dead: nothing loadable" `Quick
      test_both_superblocks_dead;
    Alcotest.test_case "snapshot stays frozen beside updates" `Quick
      test_snapshot_frozen_scan;
    Alcotest.test_case "recover falls back past damaged metadata" `Quick
      test_recover_falls_back_past_damage;
    Alcotest.test_case "replay bounded by the last flip" `Quick
      test_replay_bounded_by_flip;
    prop_flip_boundary_recovery;
  ]
