(* The telemetry layer: JSON emitter/parser round-trips, histogram
   percentiles against a brute-force sorted-array oracle, counter
   reset/snapshot semantics, registry find-or-create, trace capacity. *)

module J = Fpb_obs.Json
module Counter = Fpb_obs.Counter
module Histogram = Fpb_obs.Histogram
module Trace = Fpb_obs.Trace
module Registry = Fpb_obs.Registry

(* --- JSON ------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("null", J.Null);
        ("bool", J.Bool true);
        ("int", J.Int (-42));
        ("float", J.Float 1.5);
        ("str", J.Str "a \"quoted\" line\nwith\tcontrol \x01 bytes");
        ("list", J.List [ J.Int 1; J.Str "two"; J.List []; J.Obj [] ]);
      ]
  in
  List.iter
    (fun minify ->
      let s = J.to_string ~minify v in
      if J.parse s <> v then Alcotest.failf "round-trip failed on %s" s)
    [ true; false ]

let test_json_numbers () =
  (* ints stay ints; anything fractional or exponential parses as float *)
  Alcotest.(check bool) "int" true (J.parse "17" = J.Int 17);
  Alcotest.(check bool) "neg" true (J.parse "-3" = J.Int (-3));
  Alcotest.(check bool) "frac" true (J.parse "2.5" = J.Float 2.5);
  Alcotest.(check bool) "exp" true (J.parse "1e3" = J.Float 1000.);
  Alcotest.(check bool)
    "unicode escape" true
    (J.parse {|"Aé"|} = J.Str "A\xc3\xa9")

let test_json_errors () =
  List.iter
    (fun s ->
      match J.parse s with
      | exception J.Parse_error _ -> ()
      | v -> Alcotest.failf "%S parsed as %s" s (J.to_string ~minify:true v))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

(* --- Counters --------------------------------------------------------- *)

let test_counter_semantics () =
  let c = Counter.make "test.events" in
  Alcotest.(check int) "starts at zero" 0 (Counter.value c);
  Counter.add c 5;
  Counter.incr c;
  Alcotest.(check int) "accumulates" 6 (Counter.value c);
  Alcotest.(check bool) "kv" true (Counter.kv c = ("test.events", 6));
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.value c);
  Counter.add c (-2);
  Alcotest.(check int) "negative add (undo)" (-2) (Counter.value c)

(* --- Histograms vs. brute-force oracle -------------------------------- *)

(* Exact order statistic on the sorted sample, nearest-rank definition
   matching Histogram.percentile's contract at the bucket level. *)
let oracle_percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else if p <= 0. then sorted.(0)
  else if p >= 100. then sorted.(n - 1)
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let check_against_oracle name values =
  let h = Histogram.make name in
  Array.iter (Histogram.record h) values;
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let n = Array.length values in
  Alcotest.(check int) (name ^ " count") n (Histogram.count h);
  Alcotest.(check int)
    (name ^ " sum")
    (Array.fold_left ( + ) 0 values)
    (Histogram.sum h);
  if n > 0 then begin
    Alcotest.(check int) (name ^ " min") sorted.(0) (Histogram.min_value h);
    Alcotest.(check int) (name ^ " max") sorted.(n - 1) (Histogram.max_value h)
  end;
  List.iter
    (fun p ->
      let est = Histogram.percentile h p in
      let exact = oracle_percentile sorted p in
      (* log-linear buckets with 16 sub-buckets: within 1/16 relative
         error (and exact at the extremes) *)
      let tol = max 1 (exact / 16) in
      if abs (est - exact) > tol then
        Alcotest.failf "%s p%.0f: estimated %d, exact %d (tol %d)" name p est
          exact tol)
    [ 0.; 25.; 50.; 75.; 90.; 95.; 99.; 100. ]

let test_histogram_oracle () =
  check_against_oracle "small-exact" [| 0; 1; 2; 3; 4; 5; 15 |];
  check_against_oracle "uniform"
    (Array.init 1000 (fun i -> (i * 7919) mod 10_000));
  check_against_oracle "heavy-tail"
    (Array.init 500 (fun i -> if i mod 50 = 0 then 1_000_000 + i else i mod 100));
  check_against_oracle "constant" (Array.make 64 777);
  check_against_oracle "wide"
    (Array.init 2000 (fun i -> (i * i * 31) mod 50_000_000))

let test_histogram_empty_and_reset () =
  let h = Histogram.make "test.empty" in
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  Alcotest.(check int) "empty p50" 0 (Histogram.percentile h 50.);
  Histogram.record h 123;
  Histogram.reset h;
  Alcotest.(check int) "reset count" 0 (Histogram.count h);
  Alcotest.(check int) "reset max" 0 (Histogram.max_value h);
  Histogram.record h (-5);
  Alcotest.(check int) "negative clamped" 0 (Histogram.max_value h);
  match Histogram.percentile h 101. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p101 accepted"

(* --- Registry --------------------------------------------------------- *)

let test_registry_semantics () =
  let r = Registry.create () in
  Registry.add r "b.count" 2;
  Registry.add r "a.count" 1;
  Registry.add r "b.count" 3;
  Alcotest.(check bool)
    "find-or-create accumulates, snapshot sorted" true
    (Registry.snapshot r = [ ("a.count", 1); ("b.count", 5) ]);
  Alcotest.(check bool)
    "same counter instance" true
    (Registry.counter r "a.count" == Registry.counter r "a.count");
  Registry.observe r "lat" 10;
  Registry.observe r "lat" 20;
  Alcotest.(check int) "histogram recorded" 2
    (Histogram.count (Registry.histogram r "lat"));
  Registry.reset r;
  Alcotest.(check bool)
    "reset keeps instruments at zero" true
    (Registry.snapshot r = [ ("a.count", 0); ("b.count", 0) ]);
  Alcotest.(check int) "reset histogram" 0
    (Histogram.count (Registry.histogram r "lat"))

let test_registry_json () =
  let r = Registry.create () in
  Registry.add r "x.count" 7;
  Registry.observe r "y_ns" 100;
  let j = J.parse (J.to_string (Registry.to_json r)) in
  let counter =
    Option.bind (J.member "counters" j) (J.member "x.count")
    |> Fun.flip Option.bind J.to_int
  in
  Alcotest.(check (option int)) "counter in json" (Some 7) counter;
  let p50 =
    Option.bind (J.member "histograms" j) (J.member "y_ns")
    |> Fun.flip Option.bind (J.member "p50")
    |> Fun.flip Option.bind J.to_int
  in
  Alcotest.(check (option int)) "histogram p50 in json" (Some 100) p50

(* --- Traces ----------------------------------------------------------- *)

let test_trace_capacity () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.emit tr "ev" [ ("i", J.Int i) ]
  done;
  Alcotest.(check int) "length bounded" 4 (Trace.length tr);
  Alcotest.(check int) "dropped counted" 6 (Trace.dropped tr);
  (match Trace.events tr with
  | { Trace.ev_attrs = [ ("i", J.Int 7) ]; _ } :: _ -> ()
  | _ -> Alcotest.fail "oldest retained event should be i=7");
  Trace.clear tr;
  Alcotest.(check int) "clear" 0 (Trace.length tr)

(* Index instrumentation: a trace sink attached via the common interface
   receives one node_access event per level on every search, and the
   per-level counters agree. *)
let test_index_trace_events () =
  let open Fpb_btree_common in
  let sys = Fpb_experiments.Setup.make ~page_size:4096 () in
  List.iter
    (fun kind ->
      let idx = Fpb_experiments.Setup.make_index kind sys.Fpb_experiments.Setup.pool in
      let pairs = Array.init 20_000 (fun i -> (2 * i, i)) in
      Index_sig.bulkload idx pairs ~fill:0.8;
      let tr = Trace.create () in
      Index_sig.set_trace idx (Some tr);
      Index_sig.reset_level_accesses idx;
      let searches = 5 in
      for i = 1 to searches do
        ignore (Index_sig.search idx (2 * i * 1000))
      done;
      Index_sig.set_trace idx None;
      let name = Index_sig.name idx in
      let height = Index_sig.height idx in
      Alcotest.(check int)
        (name ^ ": one event per level per search")
        (searches * height) (Trace.length tr);
      let levels = Index_sig.level_accesses idx in
      Alcotest.(check int)
        (name ^ ": level counters sized to height")
        height (Array.length levels);
      Alcotest.(check int)
        (name ^ ": root accesses")
        searches levels.(0);
      List.iter
        (fun ev ->
          if ev.Trace.ev_name <> "node_access" then
            Alcotest.failf "%s: unexpected event %s" name ev.Trace.ev_name;
          match List.assoc_opt "level" ev.Trace.ev_attrs with
          | Some (J.Int l) when l >= 1 && l <= height -> ()
          | _ -> Alcotest.failf "%s: bad level attr" name)
        (Trace.events tr))
    Fpb_experiments.Setup.all_kinds

(* --- End-to-end: one experiment through the report -------------------- *)

let test_report_roundtrip () =
  let e = Option.get (Fpb_experiments.Registry.find "table1") in
  let o = Fpb_experiments.Registry.run_entry Fpb_experiments.Scale.Tiny e in
  let json =
    Fpb_experiments.Report.make ~scale:Fpb_experiments.Scale.Tiny
      ~timestamp:"1970-01-01T00:00:00Z" [ o ]
  in
  let parsed = J.parse (J.to_string json) in
  let ids =
    Option.bind (J.member "experiments" parsed) J.to_list
    |> Option.value ~default:[]
    |> List.filter_map (fun e ->
           Option.bind (J.member "id" e) J.to_str)
  in
  Alcotest.(check (list string)) "experiment id present" [ "table1" ] ids;
  Alcotest.(check (option string))
    "scale recorded" (Some "tiny")
    (Option.bind (J.member "run" parsed) (J.member "scale")
    |> Fun.flip Option.bind J.to_str)

let suite =
  [
    Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: number parsing" `Quick test_json_numbers;
    Alcotest.test_case "json: malformed inputs" `Quick test_json_errors;
    Alcotest.test_case "counter: semantics" `Quick test_counter_semantics;
    Alcotest.test_case "histogram: vs sorted-array oracle" `Quick
      test_histogram_oracle;
    Alcotest.test_case "histogram: empty/reset/clamp" `Quick
      test_histogram_empty_and_reset;
    Alcotest.test_case "registry: find-or-create/reset" `Quick
      test_registry_semantics;
    Alcotest.test_case "registry: json shape" `Quick test_registry_json;
    Alcotest.test_case "trace: capacity and drops" `Quick test_trace_capacity;
    Alcotest.test_case "trace: index node_access events" `Quick
      test_index_trace_events;
    Alcotest.test_case "report: run one experiment, parse back" `Quick
      test_report_roundtrip;
  ]
