(* Unit and property tests for the durability subsystem: log record
   codec, commit/recover cycle, group-commit loss semantics, and the
   crash-at-every-record-boundary recovery property over all four index
   structures. *)

open Fpb_storage
open Fpb_btree_common
open Fpb_wal
module X = Fpb_experiments

let check_int = Alcotest.(check int)

(* --- record codec --- *)

let roundtrip label r =
  let s = Wal.Codec.encode r in
  match Wal.Codec.decode (Bytes.of_string s) 0 with
  | None -> Alcotest.failf "%s: decode failed" label
  | Some (r', next) ->
      check_int (label ^ ": consumed") (String.length s) next;
      Alcotest.(check bool) (label ^ ": round-trip") true (r = r')

let test_codec_roundtrip () =
  roundtrip "commit" (Wal.Commit { lsn = 7; op = 3; meta = [ 1; 0; -5; 1 lsl 30 ] });
  roundtrip "checkpoint" (Wal.Checkpoint { lsn = 1; op = 0; meta = [] });
  roundtrip "delta"
    (Wal.Delta { lsn = 9; page = 4; off = 123; bytes = Bytes.of_string "hello" });
  (* a full-page image: large bodies produce checksums above 2^31, which
     must survive the signed 32-bit framing *)
  let img = Bytes.init 4096 (fun i -> Char.chr (i * 31 land 0xff)) in
  roundtrip "image" (Wal.Image { lsn = 2; page = 5; img })

let test_codec_torn_tail () =
  let a = Wal.Codec.encode (Wal.Commit { lsn = 1; op = 1; meta = [ 42 ] }) in
  let b =
    Wal.Codec.encode
      (Wal.Delta { lsn = 2; page = 3; off = 0; bytes = Bytes.make 16 'z' })
  in
  let s = a ^ b in
  (* a truncated tail: the first record parses, the second stops the scan *)
  let torn = Bytes.of_string (String.sub s 0 (String.length s - 3)) in
  (match Wal.Codec.decode torn 0 with
  | Some (_, next) ->
      Alcotest.(check bool) "torn tail unreadable" true
        (Wal.Codec.decode torn next = None)
  | None -> Alcotest.fail "first record should parse");
  (* a flipped body byte: the checksum rejects the record *)
  let bad = Bytes.of_string a in
  Bytes.set bad 6 (Char.chr (Char.code (Bytes.get bad 6) lxor 0xff));
  Alcotest.(check bool) "corrupt record rejected" true
    (Wal.Codec.decode bad 0 = None)

let test_codec_crc_framing () =
  (* The frame is [len | body | crc32(body)] little-endian: pin the
     trailer to the independently computed CRC-32 of the body bytes, so
     the on-disk format can't silently drift back to a weaker sum. *)
  let r = Wal.Commit { lsn = 5; op = 2; meta = [ 9 ] } in
  let s = Wal.Codec.encode r in
  let b = Bytes.of_string s in
  let len = Int32.to_int (Bytes.get_int32_le b 0) in
  check_int "frame length" (String.length s) (len + 8);
  let crc = Int32.to_int (Bytes.get_int32_le b (4 + len)) land 0xffffffff in
  check_int "trailer is crc32 of body" crc
    (Fpb_storage.Checksum.update 0 b 4 len);
  (* CRC-32 check vector through the same path the codec uses. *)
  check_int "crc32 check value" 0xCBF43926
    (Fpb_storage.Checksum.string "123456789");
  (* A flipped CRC byte alone (body intact) must also reject. *)
  Bytes.set b (4 + len) (Char.chr (Char.code (Bytes.get b (4 + len)) lxor 1));
  Alcotest.(check bool) "corrupt trailer rejected" true
    (Wal.Codec.decode b 0 = None)

(* --- commit / crash / recover on a real system --- *)

let build_small kind n =
  let sys = X.Setup.make ~n_disks:2 ~pool_pages:64 ~page_size:4096 () in
  let rng = Fpb_workload.Prng.create 11 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
  let idx = X.Run.build sys kind pairs ~fill:0.8 in
  (sys, pairs, idx)

let key_set idx =
  let acc = ref [] in
  Index_sig.iter idx (fun k v -> acc := (k, v) :: !acc);
  List.sort compare !acc

let test_commit_recover () =
  let sys, _, idx = build_small X.Setup.Disk_first 300 in
  let wal = Wal.attach ~meta:(Index_sig.meta idx) sys.X.Setup.pool in
  for i = 1 to 10 do
    ignore (Index_sig.insert idx (1_000_000 + i) i);
    Wal.commit wal ~op:i ~meta:(Index_sig.meta idx)
  done;
  Wal.crash_now wal;
  let r = Wal.recover wal in
  check_int "all flushed commits durable" 10 r.Wal.committed_ops;
  (match Wal.verify_images wal with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("durable image check: " ^ m));
  Index_sig.restore_meta idx r.Wal.meta;
  Index_sig.check idx;
  for i = 1 to 10 do
    Alcotest.(check (option int))
      "committed insert recovered" (Some i)
      (Index_sig.search idx (1_000_000 + i))
  done

let test_group_commit_loss () =
  (* With a huge group-commit threshold, commits stay in the log buffer:
     a power cut loses them all, and recovery rolls back to the
     attach-time checkpoint. *)
  let sys, pairs, idx = build_small X.Setup.Disk_opt 300 in
  let before = key_set idx in
  let wal =
    Wal.attach ~group_commit_bytes:8_000_000 ~meta:(Index_sig.meta idx)
      sys.X.Setup.pool
  in
  for i = 1 to 5 do
    ignore (Index_sig.insert idx (2_000_000 + i) i);
    Wal.commit wal ~op:i ~meta:(Index_sig.meta idx)
  done;
  Wal.crash_now wal;
  let r = Wal.recover wal in
  check_int "buffered commits lost" 0 r.Wal.committed_ops;
  Index_sig.restore_meta idx r.Wal.meta;
  Index_sig.check idx;
  Alcotest.(check bool) "key set back to bulkload" true (key_set idx = before);
  check_int "bulkload size sanity" (Array.length pairs) (List.length before)

let test_explicit_flush_durable () =
  (* Same threshold, but an explicit flush before the cut: everything
     sealed so far survives. *)
  let sys, _, idx = build_small X.Setup.Disk_opt 300 in
  let wal =
    Wal.attach ~group_commit_bytes:8_000_000 ~meta:(Index_sig.meta idx)
      sys.X.Setup.pool
  in
  for i = 1 to 5 do
    ignore (Index_sig.insert idx (2_000_000 + i) i);
    Wal.commit wal ~op:i ~meta:(Index_sig.meta idx)
  done;
  Wal.flush wal;
  check_int "flush drains buffer" (Wal.log_bytes wal) (Wal.durable_bytes wal);
  Wal.crash_now wal;
  let r = Wal.recover wal in
  check_int "flushed commits durable" 5 r.Wal.committed_ops

(* --- mirrored log: detection at K=1, survival at K=2 --- *)

(* With a single log disk, damage to committed records must be detected
   and reported — recovery serves the intact prefix and says what it
   lost, never pretending the stream was merely cut short. *)
let test_single_mirror_loss_detected () =
  let sys, _, idx = build_small X.Setup.Disk_first 300 in
  let wal = Wal.attach ~meta:(Index_sig.meta idx) sys.X.Setup.pool in
  for i = 1 to 10 do
    ignore (Index_sig.insert idx (1_000_000 + i) i);
    Wal.commit wal ~op:i ~meta:(Index_sig.meta idx)
  done;
  (* Zero a span in the middle of the committed stream on the only
     mirror: bytes of some committed transaction are gone for good. *)
  Wal.inject_mirror_damage wal ~mirror:0
    (Wal.Zero_span { off = Wal.durable_bytes wal / 2; len = 64 });
  Wal.crash_now wal;
  let r = Wal.recover wal in
  Alcotest.(check bool) "loss detected" true (r.Wal.damaged_records > 0);
  Alcotest.(check bool) "replay stopped at the damage" true
    (r.Wal.committed_ops < 10);
  (* The intact prefix is still a consistent index. *)
  Index_sig.restore_meta idx r.Wal.meta;
  Index_sig.check idx

(* Property: with K = 2 mirrors, any single-mirror damage — torn tail,
   interior zeroing, bit rot, or a latent-sector fault schedule — costs
   no committed transaction, and recovery reports no damage (the other
   mirror served every record).  Media repair still works afterwards. *)
let prop_mirror_survives_single_fault =
  Util.qtest ~count:10 "K=2: single-mirror damage loses nothing"
    QCheck2.Gen.(pair (1 -- 1000) (0 -- 3))
    (fun (seed, dkind) ->
      let sys, _, idx = build_small X.Setup.Disk_first 200 in
      let wal =
        Wal.attach ~log_base_images:true ~log_mirrors:2
          ~meta:(Index_sig.meta idx) sys.X.Setup.pool
      in
      let prng = Fpb_workload.Prng.create seed in
      let victim = Fpb_workload.Prng.int prng 2 in
      for i = 1 to 8 do
        ignore (Index_sig.insert idx (1_000_000 + i) (seed + i));
        Wal.commit wal ~op:i ~meta:(Index_sig.meta idx)
      done;
      let expected = key_set idx in
      let dlen = Wal.durable_bytes wal in
      (match dkind with
      | 0 ->
          Wal.inject_mirror_damage wal ~mirror:victim
            (Wal.Torn_tail (1 + Fpb_workload.Prng.int prng (dlen / 2)))
      | 1 ->
          Wal.inject_mirror_damage wal ~mirror:victim
            (Wal.Zero_span
               {
                 off = Fpb_workload.Prng.int prng dlen;
                 len = 1 + Fpb_workload.Prng.int prng 512;
               })
      | 2 ->
          Wal.inject_mirror_damage wal ~mirror:victim
            (Wal.Flip
               {
                 off = Fpb_workload.Prng.int prng dlen;
                 bit = Fpb_workload.Prng.int prng 8;
               })
      | _ ->
          (* every read of the victim mirror develops a latent sector *)
          Wal.set_log_faults wal ~mirror:victim
            (Some { Fpb_storage.Fault.none with seed; latent = 1.0 }));
      Wal.crash_now wal;
      let r = Wal.recover wal in
      Wal.set_log_faults wal None;
      Index_sig.restore_meta idx r.Wal.meta;
      Index_sig.check idx;
      let survived =
        r.Wal.committed_ops = 8
        && r.Wal.damaged_records = 0
        && key_set idx = expected
      in
      (* and the healed log is still a usable repair source *)
      Buffer_pool.clear sys.X.Setup.pool;
      let page = ref 0 in
      Page_store.iter_live sys.X.Setup.store (fun p ->
          if !page = 0 && not (Buffer_pool.is_resident sys.X.Setup.pool p)
          then page := p);
      let b = Page_store.bytes sys.X.Setup.store !page in
      Bytes.set b 33 (Char.chr (Char.code (Bytes.get b 33) lxor 0x40));
      let repaired =
        match Buffer_pool.check_media sys.X.Setup.pool !page with
        | `Repaired -> true
        | _ -> false
      in
      Wal.detach wal;
      survived && repaired)

(* --- striped log: records round-robin across S log disks --- *)

let test_striped_commit_recover () =
  (* S=2: sealed records alternate between two log disks; recovery
     merges the per-stripe scans back into one stream by LSN. *)
  let sys, _, idx = build_small X.Setup.Disk_first 300 in
  let wal =
    Wal.attach ~log_stripes:2 ~meta:(Index_sig.meta idx) sys.X.Setup.pool
  in
  check_int "stripes" 2 (Wal.log_stripes wal);
  for i = 1 to 10 do
    ignore (Index_sig.insert idx (1_000_000 + i) i);
    Wal.commit wal ~op:i ~meta:(Index_sig.meta idx)
  done;
  Wal.crash_now wal;
  let r = Wal.recover wal in
  check_int "all commits durable across stripes" 10 r.Wal.committed_ops;
  check_int "no damage" 0 r.Wal.damaged_records;
  (match Wal.verify_images wal with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("durable image check: " ^ m));
  Index_sig.restore_meta idx r.Wal.meta;
  Index_sig.check idx;
  for i = 1 to 10 do
    Alcotest.(check (option int))
      "committed insert recovered" (Some i)
      (Index_sig.search idx (1_000_000 + i))
  done

let prop_striping_invariant =
  (* The stripe count is a bandwidth knob, not a semantics knob: the same
     workload crash-recovers to the same state at S = 1, 2, 4. *)
  Util.qtest ~count:8 "recovery result independent of stripe count"
    QCheck2.Gen.(1 -- 1000)
    (fun seed ->
      let outcome s =
        let sys, _, idx = build_small X.Setup.Disk_opt 200 in
        let wal =
          Wal.attach ~log_stripes:s ~meta:(Index_sig.meta idx)
            sys.X.Setup.pool
        in
        let prng = Fpb_workload.Prng.create seed in
        for i = 1 to 8 do
          ignore
            (Index_sig.insert idx
               (1_000_000 + Fpb_workload.Prng.int prng 50_000)
               i);
          Wal.commit wal ~op:i ~meta:(Index_sig.meta idx)
        done;
        Wal.crash_now wal;
        let r = Wal.recover wal in
        Index_sig.restore_meta idx r.Wal.meta;
        Index_sig.check idx;
        (r.Wal.committed_ops, r.Wal.damaged_records, key_set idx)
      in
      let a = outcome 1 in
      a = outcome 2 && a = outcome 4)

let test_striped_loss_detected () =
  (* S=2, K=1: an interior span of ONE stripe is zeroed.  The surviving
     stripe still carries readable records with later LSNs, so only the
     merged LSN-gap check can see the hole — recovery must report the
     loss and stop replay there, not serve the other stripe's records
     from beyond the gap. *)
  let sys, _, idx = build_small X.Setup.Disk_first 300 in
  let wal =
    Wal.attach ~log_stripes:2 ~meta:(Index_sig.meta idx) sys.X.Setup.pool
  in
  for i = 1 to 12 do
    ignore (Index_sig.insert idx (1_000_000 + i) i);
    Wal.commit wal ~op:i ~meta:(Index_sig.meta idx)
  done;
  (* Damage offsets are stripe-local.  Records alternate stripes in seal
     order, so stripe 0's extent is the sizes of the even-indexed layout
     entries; smash the body of its middle record. *)
  let stripe0 = List.filteri (fun i _ -> i mod 2 = 0) (Wal.layout wal) in
  let n0 = List.length stripe0 in
  let local_start = ref 0 in
  List.iteri
    (fun i b -> if i < n0 / 2 then local_start := !local_start + b.Wal.size)
    stripe0;
  Wal.inject_mirror_damage wal ~mirror:0
    (Wal.Zero_span { off = !local_start + 4; len = 16 });
  Wal.crash_now wal;
  let r = Wal.recover wal in
  Alcotest.(check bool) "cross-stripe loss detected" true
    (r.Wal.damaged_records > 0);
  Alcotest.(check bool) "replay stopped at the gap" true
    (r.Wal.committed_ops < 12);
  Index_sig.restore_meta idx r.Wal.meta;
  Index_sig.check idx

let test_striped_mirror_survives () =
  (* S=2 x K=2: striping composes with mirroring.  Damaging one copy of
     one stripe costs nothing — its twin serves that stripe. *)
  let sys, _, idx = build_small X.Setup.Disk_first 300 in
  let wal =
    Wal.attach ~log_stripes:2 ~log_mirrors:2 ~meta:(Index_sig.meta idx)
      sys.X.Setup.pool
  in
  for i = 1 to 10 do
    ignore (Index_sig.insert idx (1_000_000 + i) i);
    Wal.commit wal ~op:i ~meta:(Index_sig.meta idx)
  done;
  (* Flattened disk index s*K + k: 0 is stripe 0, copy 0.  Hit the body
     of stripe 0's middle record (stripe-local offset from the layout:
     records alternate stripes in seal order). *)
  let stripe0 = List.filteri (fun i _ -> i mod 2 = 0) (Wal.layout wal) in
  let n0 = List.length stripe0 in
  let local_start = ref 0 in
  List.iteri
    (fun i b -> if i < n0 / 2 then local_start := !local_start + b.Wal.size)
    stripe0;
  Wal.inject_mirror_damage wal ~mirror:0
    (Wal.Zero_span { off = !local_start + 4; len = 16 });
  Wal.crash_now wal;
  let r = Wal.recover wal in
  check_int "nothing lost" 10 r.Wal.committed_ops;
  check_int "no damage reported" 0 r.Wal.damaged_records;
  Index_sig.restore_meta idx r.Wal.meta;
  Index_sig.check idx

(* --- satellite property: crash at every record boundary --- *)

(* For a random workload seed: run the golden scenario on each index
   structure, enumerate EVERY log record boundary as a crash point
   (no thinning, no mid-record points), and require recovery to restore
   exactly the committed prefix each time.  This reuses the crashtest
   harness' own building blocks so the oracle stays the golden run's
   commit offsets. *)
let prop_recovery_prefix =
  Util.qtest ~count:2 "crash at every boundary recovers committed prefix"
    QCheck2.Gen.(1 -- 1000)
    (fun seed ->
      List.for_all
        (fun kind ->
          let rng = Fpb_workload.Prng.create seed in
          let pairs = Fpb_workload.Keygen.bulk_pairs rng 150 in
          let ops = X.Crashtest.gen_ops rng pairs 12 in
          let _sys, idx, wal, commit_ends =
            X.Crashtest.run_scenario kind pairs ops ~ckpt_every:5 ~crash_at:None
          in
          Index_sig.check idx;
          let expect b =
            let c = ref 0 in
            Array.iteri (fun i e -> if i > 0 && e <= b then incr c) commit_ends;
            !c
          in
          let points = Crash.points ~mid_record:false (Wal.layout wal) in
          List.for_all
            (fun p ->
              let _, errs =
                X.Crashtest.check_point kind pairs ops ~ckpt_every:5 ~expect p
              in
              errs = [])
            points)
        X.Setup.all_kinds)

let suite =
  [
    Alcotest.test_case "codec round-trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec torn tail" `Quick test_codec_torn_tail;
    Alcotest.test_case "codec crc32 framing" `Quick test_codec_crc_framing;
    Alcotest.test_case "commit then recover" `Quick test_commit_recover;
    Alcotest.test_case "group commit loses buffered tail" `Quick
      test_group_commit_loss;
    Alcotest.test_case "explicit flush is durable" `Quick
      test_explicit_flush_durable;
    Alcotest.test_case "K=1: log damage detected, not absorbed" `Quick
      test_single_mirror_loss_detected;
    Alcotest.test_case "S=2: striped commit then recover" `Quick
      test_striped_commit_recover;
    Alcotest.test_case "S=2: cross-stripe loss detected by LSN gap" `Quick
      test_striped_loss_detected;
    Alcotest.test_case "S=2 x K=2: striping composes with mirroring" `Quick
      test_striped_mirror_survives;
    prop_striping_invariant;
    prop_mirror_survives_single_fault;
    prop_recovery_prefix;
  ]
