(* Cross-cutting property tests: equivalence between index structures,
   behaviour under buffer-pool pressure, and model tests for the smaller
   data structures. *)

open Fpb_btree_common
module M = Map.Make (Int)

(* --- All four indexes agree with each other -------------------------------- *)

let prop_indexes_equivalent =
  Util.qtest ~count:15 "all four indexes give identical answers"
    QCheck2.Gen.(
      pair (1 -- 2000)
        (list_size (return 200)
           (pair (0 -- 3) (pair (0 -- 4000) (0 -- 1000)))))
    (fun (n, ops) ->
      let make kind =
        let pool = Util.make_pool ~page_size:4096 ~capacity:16384 () in
        let idx = Fpb_experiments.Setup.make_index kind pool in
        Index_sig.bulkload idx (Array.init n (fun i -> (2 * i, i))) ~fill:0.8;
        idx
      in
      let idxs = List.map make Fpb_experiments.Setup.all_kinds in
      List.for_all
        (fun (op, (k, v)) ->
          let results =
            List.map
              (fun idx ->
                match op with
                | 0 -> `I (Index_sig.insert idx k v)
                | 1 -> `D (Index_sig.delete idx k)
                | 2 -> `S (Index_sig.search idx k)
                | _ ->
                    let acc = ref 0 in
                    ignore
                      (Index_sig.range_scan idx ~start_key:k ~end_key:(k + v)
                         (fun _ _ -> incr acc));
                    `N !acc)
              idxs
          in
          match results with
          | first :: rest -> List.for_all (( = ) first) rest
          | [] -> true)
        ops)

(* --- search_batch ≡ Array.map search, on all four indexes ------------------ *)

(* Probes drawn from twice the key range, so roughly half are absent;
   the small range makes in-batch duplicates common.  A handful of
   random inserts first, so the batch also runs against non-bulkloaded
   shapes (split pages, updated slots). *)
let prop_search_batch_equiv =
  Util.qtest ~count:15 "search_batch ≡ Array.map search on all four indexes"
    QCheck2.Gen.(
      triple (1 -- 2000)
        (list_size (0 -- 30) (pair (0 -- 4000) (0 -- 1000)))
        (list_size (0 -- 100) (0 -- 4000)))
    (fun (n, inserts, probes) ->
      let keys = Array.of_list probes in
      List.for_all
        (fun kind ->
          let pool = Util.make_pool ~page_size:4096 ~capacity:16384 () in
          let idx = Fpb_experiments.Setup.make_index kind pool in
          Index_sig.bulkload idx
            (Array.init n (fun i -> (2 * i, i)))
            ~fill:0.8;
          List.iter (fun (k, v) -> ignore (Index_sig.insert idx k v)) inserts;
          let want = Array.map (fun k -> Index_sig.search idx k) keys in
          Index_sig.search_batch idx keys = want)
        Fpb_experiments.Setup.all_kinds)

(* A wave fetches each shared node once: however many probes a batch
   holds, the root is charged exactly one level-0 access. *)
let test_batch_one_root_access kind () =
  let pool = Util.make_pool ~page_size:4096 ~capacity:16384 () in
  let idx = Fpb_experiments.Setup.make_index kind pool in
  Index_sig.bulkload idx (Array.init 5_000 (fun i -> (2 * i, i))) ~fill:0.8;
  Index_sig.reset_level_accesses idx;
  let keys = Array.init 16 (fun i -> 2 * ((i * 311) mod 5_000)) in
  let got = Index_sig.search_batch idx keys in
  Array.iteri
    (fun i k ->
      Alcotest.(check (option int))
        (Printf.sprintf "probe %d" i)
        (Some (k / 2)) got.(i))
    keys;
  Alcotest.(check int)
    "one root access for the whole batch" 1
    (Index_sig.level_accesses idx).(0);
  (* The singleton discipline charges one per probe. *)
  Index_sig.reset_level_accesses idx;
  Array.iter (fun k -> ignore (Index_sig.search idx k)) keys;
  Alcotest.(check int)
    "16 root accesses for 16 singleton probes" 16
    (Index_sig.level_accesses idx).(0)

(* --- Correctness under a thrashing buffer pool ----------------------------- *)

let test_tiny_pool kind () =
  (* a small pool forces constant eviction mid-operation (cache-first pins
     the most pages at once during a leaf-page split: page, new page,
     parent-walk page, sibling pages, jump-pointer chunks) *)
  let capacity = if kind = Fpb_experiments.Setup.Cache_first then 16 else 12 in
  let pool = Util.make_pool ~page_size:4096 ~capacity () in
  let idx = Fpb_experiments.Setup.make_index kind pool in
  let m = ref M.empty in
  let rng = Fpb_workload.Prng.create 61 in
  for _ = 1 to 6000 do
    let k = Fpb_workload.Prng.int rng 50_000 in
    ignore (Index_sig.insert idx k k);
    m := M.add k k !m
  done;
  Index_sig.check idx;
  for _ = 1 to 500 do
    let k = Fpb_workload.Prng.int rng 60_000 in
    Alcotest.(check (option int))
      (Printf.sprintf "search %d" k)
      (M.find_opt k !m) (Index_sig.search idx k)
  done;
  let count = ref 0 in
  ignore
    (Index_sig.range_scan idx ~start_key:min_int ~end_key:max_int (fun _ _ ->
         incr count));
  Alcotest.(check int) "full scan under thrash" (M.cardinal !m) !count;
  (* Batched lookups under the same pressure: a wide wave's frontier can
     outgrow the pool, forcing the Overloaded split-and-retry path all
     the way down to singleton descents. *)
  let keys = Array.make 600 0 in
  for i = 0 to 599 do
    keys.(i) <- Fpb_workload.Prng.int rng 60_000
  done;
  let got = Index_sig.search_batch idx keys in
  Array.iteri
    (fun i k ->
      Alcotest.(check (option int))
        (Printf.sprintf "batch search %d" k)
        (M.find_opt k !m) got.(i))
    keys

(* --- Jump-pointer array vs list model --------------------------------------- *)

let prop_jump_array_model =
  Util.qtest ~count:40 "jump array behaves like a list"
    QCheck2.Gen.(pair (1 -- 60) (list_size (0 -- 40) (0 -- 1000)))
    (fun (initial, insert_positions) ->
      let pool = Util.make_pool ~page_size:4096 () in
      let store = Fpb_storage.Buffer_pool.store pool in
      let jp = Fpb_core.Jump_array.create pool in
      let chunk_of = Hashtbl.create 64 in
      let on_assign pg ~chunk = Hashtbl.replace chunk_of pg chunk in
      let pages = Array.init initial (fun _ -> Fpb_storage.Page_store.alloc store) in
      Fpb_core.Jump_array.build jp pages ~fill:0.9 ~on_assign;
      let model = ref (Array.to_list pages) in
      List.iter
        (fun pos ->
          let after = List.nth !model (pos mod List.length !model) in
          let np = Fpb_storage.Page_store.alloc store in
          Fpb_core.Jump_array.insert_after jp
            ~chunk:(Hashtbl.find chunk_of after)
            ~after_page:after ~new_page:np ~on_assign;
          let rec ins = function
            | [] -> [ np ]
            | x :: rest when x = after -> x :: np :: rest
            | x :: rest -> x :: ins rest
          in
          model := ins !model)
        insert_positions;
      Fpb_core.Jump_array.peek_all jp = !model)

(* --- Slotted node vs sorted association list -------------------------------- *)

let prop_slotted_model =
  Util.qtest ~count:60 "slotted node behaves like a sorted assoc list"
    QCheck2.Gen.(list_size (0 -- 60) (pair (string_size ~gen:(char_range 'a' 'f') (1 -- 8)) (0 -- 100)))
    (fun kvs ->
      let sim = Fpb_simmem.Sim.create () in
      let r = Fpb_simmem.Mem.make ~bytes:(Bytes.create 4096) ~base:0 in
      let nd = { Fpb_varkey.Slotted.r; off = 0; size = 4096 } in
      Fpb_varkey.Slotted.init sim nd ~leaf:true;
      let model = ref [] in
      List.iter
        (fun (k, v) ->
          let i = Fpb_varkey.Slotted.find sim nd ~key:k `Lower in
          let dup =
            i < Fpb_varkey.Slotted.count sim nd
            && Fpb_varkey.Slotted.key_at sim nd i = k
          in
          if dup then Fpb_varkey.Slotted.set_ptr_at sim nd i v
          else ignore (Fpb_varkey.Slotted.insert_at sim nd ~i k v);
          model := (k, v) :: List.remove_assoc k !model)
        kvs;
      let want = List.sort compare !model in
      Fpb_varkey.Slotted.entries sim nd = want)

(* --- Tuner stability over page sizes ----------------------------------------- *)

let prop_indexes_work_at_64kb =
  Util.qtest ~count:5 "indexes work at 64KB pages (beyond Table 2)"
    QCheck2.Gen.(0 -- 1000)
    (fun seed ->
      let rng = Fpb_workload.Prng.create seed in
      List.for_all
        (fun kind ->
          let pool = Util.make_pool ~page_size:65536 ~capacity:4096 () in
          let idx = Fpb_experiments.Setup.make_index kind pool in
          Index_sig.bulkload idx (Array.init 30_000 (fun i -> (2 * i, i))) ~fill:0.9;
          (* Odd keys only: the bulkloaded pairs are (2i, i), so a random
             even key could overwrite the probe key's value and flake the
             final search assertion. *)
          for _ = 1 to 200 do
            ignore
              (Index_sig.insert idx ((2 * Fpb_workload.Prng.int rng 50_000) + 1) 1)
          done;
          Index_sig.check idx;
          Index_sig.search idx 2000 = Some 1000)
        Fpb_experiments.Setup.all_kinds)

let kinds =
  [
    ("disk_opt", Fpb_experiments.Setup.Disk_opt);
    ("micro", Fpb_experiments.Setup.Micro);
    ("disk_first", Fpb_experiments.Setup.Disk_first);
    ("cache_first", Fpb_experiments.Setup.Cache_first);
  ]

let suite =
  prop_indexes_equivalent :: prop_search_batch_equiv
  :: prop_jump_array_model :: prop_slotted_model :: prop_indexes_work_at_64kb
  :: List.map
       (fun (name, kind) ->
         Alcotest.test_case (name ^ ": tiny pool thrash") `Slow (test_tiny_pool kind))
       kinds
  @ List.map
      (fun (name, kind) ->
        Alcotest.test_case
          (name ^ ": one root access per batch")
          `Quick
          (test_batch_one_root_access kind))
      kinds
