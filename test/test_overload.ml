(* Overload-control tests: the queue-cap loss oracle against its
   closed form, deadline-aware dispatch semantics, retry-budget
   termination under random rates (qcheck), the typed [Overloaded]
   surface at pool exhaustion, and background-work backpressure. *)

open Fpb_workload
module Sim = Fpb_simmem.Sim
module Clock = Fpb_simmem.Clock
module Buffer_pool = Fpb_storage.Buffer_pool
module Page_store = Fpb_storage.Page_store
module Scrub = Fpb_storage.Scrub

(* Synthetic fixed-service op: with [n_clients] clients the system's
   capacity is exactly n_clients / service. *)
let service_ns = 1_000_000

let run_fixed ?deadline_ns ?admission ?retry ?(n_ops = 2_000)
    ?(n_clients = 4) rate =
  let sim = Sim.create () in
  Arrival.run ~sim ~n_clients ~n_ops ~rate_ops_per_s:rate
    ~discipline:Arrival.Fixed ~seed:7 ?deadline_ns ?admission ?retry
    (fun ~client:_ ~seq:_ -> Clock.advance sim.Sim.clock service_ns)

(* Queue-cap loss oracle.  Deterministic arrivals at twice capacity
   against bounded queues: once the queues fill, the system admits at
   exactly its service rate, so over the arrival window it admits
   ops x (capacity/offered) plus the n_clients x cap ops that filled
   the queues.  Everything else is shed. *)
let test_queue_cap_loss_closed_form () =
  let n_ops = 2_000 and cap = 8 and n_clients = 4 in
  let st =
    run_fixed ~n_ops ~n_clients ~admission:(Admission.Queue_cap cap) 8_000.
  in
  let want_shed = (n_ops / 2) - (n_clients * cap) in
  let tolerance = n_ops / 40 in
  if abs (st.Arrival.shed - want_shed) > tolerance then
    Alcotest.failf "shed %d, closed form ~%d (+-%d)" st.Arrival.shed want_shed
      tolerance;
  Alcotest.(check int) "no retries: every op completes or is shed"
    st.Arrival.ops
    (st.Arrival.completed + st.Arrival.dropped);
  Alcotest.(check int) "every shed op is dropped" st.Arrival.shed
    st.Arrival.dropped;
  (* The cap binds the backlog where admit-all would let it run away. *)
  if st.Arrival.max_backlog > n_clients * cap then
    Alcotest.failf "backlog %d above the %d-slot bound" st.Arrival.max_backlog
      (n_clients * cap)

(* Deadline-aware dispatch: an op is never *started* past its deadline,
   so no completion can be later than deadline + one service time; ops
   it cannot serve in time are shed or expired, never silently lost. *)
let test_deadline_aware_never_serves_stale () =
  let deadline_ns = 10 * service_ns in
  let st =
    run_fixed ~deadline_ns ~admission:Admission.Deadline_aware 12_000.
  in
  let worst = Fpb_obs.Histogram.max_value st.Arrival.latency in
  if worst > deadline_ns + service_ns then
    Alcotest.failf "completion at %d ns, deadline %d + service %d" worst
      deadline_ns service_ns;
  Alcotest.(check int) "completed + dropped = offered" st.Arrival.ops
    (st.Arrival.completed + st.Arrival.dropped);
  if st.Arrival.good > st.Arrival.completed then
    Alcotest.failf "good %d > completed %d" st.Arrival.good
      st.Arrival.completed;
  if st.Arrival.shed = 0 then
    Alcotest.failf "3x capacity with deadline admission must shed"

(* Backlog telemetry: past capacity the backlog peaks and the run
   spends real time above the watermark; below capacity with fixed
   arrivals it never leaves zero. *)
let test_backlog_accounting () =
  let hot = run_fixed 8_000. in
  if hot.Arrival.max_backlog = 0 then Alcotest.failf "no backlog at 2x";
  if hot.Arrival.backlog_peak_at_ns <= 0 then
    Alcotest.failf "peak at %d ns" hot.Arrival.backlog_peak_at_ns;
  if hot.Arrival.backlog_peak_at_ns > hot.Arrival.makespan_ns then
    Alcotest.failf "peak after the run ended";
  if hot.Arrival.time_above_watermark_ns <= 0 then
    Alcotest.failf "2x run spent no time above watermark %d"
      hot.Arrival.backlog_watermark;
  let calm = run_fixed 1_000. in
  Alcotest.(check int) "below capacity never crosses the watermark" 0
    calm.Arrival.time_above_watermark_ns

(* Retry budgets terminate: whatever the rate, discipline and budget,
   every op either completes or is dropped, and the re-entry count is
   bounded by ops x budget. *)
let test_retry_budget_terminates =
  Util.qtest ~count:25 "retry budget terminates (no livelock)"
    QCheck2.Gen.(
      triple (int_range 500 20_000) (int_range 0 12) bool)
    (fun (rate, budget, jitter) ->
      let retry =
        if budget = 0 then Retry.none
        else if jitter then
          {
            Retry.discipline =
              Retry.Backoff { base_ns = 200_000; mult = 2; jitter = true };
            budget;
          }
        else { Retry.discipline = Retry.Fixed 200_000; budget }
      in
      let st =
        run_fixed ~n_ops:300 ~deadline_ns:(4 * service_ns)
          ~admission:(Admission.Queue_cap 4) ~retry (float_of_int rate)
      in
      st.Arrival.completed + st.Arrival.dropped = st.Arrival.ops
      && st.Arrival.retries <= st.Arrival.ops * budget
      && st.Arrival.dropped <= st.Arrival.shed)

(* A fully-pinned pool refuses demand work with the typed [Overloaded]
   (counting it) at every capacity, and serves again after one unpin. *)
let test_overloaded_surfaces () =
  List.iter
    (fun frames ->
      let _sim, store, _disks, pool = Util.make_system ~capacity:frames () in
      let pages = Array.init (frames + 1) (fun _ -> Page_store.alloc store) in
      for i = 0 to frames - 1 do
        ignore (Buffer_pool.get pool pages.(i))
      done;
      let target = pages.(frames) in
      Alcotest.check_raises
        (Printf.sprintf "overloaded at %d frames" frames)
        (Buffer_pool.Overloaded { page = target; scans = 3 })
        (fun () -> ignore (Buffer_pool.get pool target));
      let v c = Fpb_obs.Counter.value c in
      Alcotest.(check int) "pool.overloaded counted" 1
        (v (Buffer_pool.stats pool).Buffer_pool.overloaded);
      if v (Buffer_pool.stats pool).Buffer_pool.overload_wait_ns <= 0 then
        Alcotest.failf "rescan waits not charged";
      Buffer_pool.unpin pool pages.(0);
      ignore (Buffer_pool.get pool target);
      Buffer_pool.unpin pool target)
    [ 1; 2; 4 ]

(* Scrub stands down while the backpressure probe reports load — no
   pages checked, cursor held — and resumes when it lifts. *)
let test_scrub_backpressure () =
  let _sim, store, _disks, pool = Util.make_system ~capacity:8 () in
  for _ = 1 to 6 do ignore (Page_store.alloc store) done;
  let sched = Scrub.scheduler ~pages_per_tick:2 pool in
  let loaded = ref true in
  Scrub.set_backpressure sched (Some (fun () -> !loaded));
  for _ = 1 to 3 do
    let r = Scrub.tick sched in
    Alcotest.(check int) "no pages checked under pressure" 0 r.Scrub.scanned
  done;
  Alcotest.(check int) "yields counted" 3 (Scrub.yields sched);
  loaded := false;
  let r = Scrub.tick sched in
  Alcotest.(check int) "resumes from the held cursor" 2 r.Scrub.scanned;
  Alcotest.(check int) "no further yields" 3 (Scrub.yields sched)

let suite =
  [
    Alcotest.test_case "queue-cap loss matches closed form" `Quick
      test_queue_cap_loss_closed_form;
    Alcotest.test_case "deadline-aware never serves stale" `Quick
      test_deadline_aware_never_serves_stale;
    Alcotest.test_case "backlog peak and watermark accounting" `Quick
      test_backlog_accounting;
    test_retry_budget_terminates;
    Alcotest.test_case "Overloaded surfaces and recovers" `Quick
      test_overloaded_surfaces;
    Alcotest.test_case "scrub yields to backpressure" `Quick
      test_scrub_backpressure;
  ]
