(* Media-failure resilience: CRC-32 codec, page checksum headers,
   retry/backoff accounting on the demand-read path, detection without a
   repair source, and the scrub + WAL-repair property (random byte flips
   in committed pages are healed and the key set survives) over all four
   index structures. *)

open Fpb_simmem
open Fpb_storage
open Fpb_btree_common
module X = Fpb_experiments

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- CRC-32 codec --- *)

let test_crc_vectors () =
  (* The standard check value for the reflected CRC-32 polynomial. *)
  check_int "123456789" 0xCBF43926 (Checksum.string "123456789");
  check_int "empty" 0 (Checksum.string "");
  check_bool "bytes = string" true
    (Checksum.bytes (Bytes.of_string "fractal") = Checksum.string "fractal")

let test_crc_incremental () =
  let b = Bytes.init 300 (fun i -> Char.chr (i * 7 land 0xff)) in
  let whole = Checksum.bytes b in
  (* Seeding [update] with a previous digest must equal one digest of the
     concatenation, for every split point. *)
  List.iter
    (fun cut ->
      let h = Checksum.update 0 b 0 cut in
      let h = Checksum.update h b cut (Bytes.length b - cut) in
      check_int (Printf.sprintf "split at %d" cut) whole h)
    [ 0; 1; 17; 299; 300 ]

let test_crc_sensitivity () =
  let b = Bytes.make 64 'a' in
  let h0 = Checksum.bytes b in
  Bytes.set b 63 'b';
  check_bool "single byte changes digest" true (Checksum.bytes b <> h0)

(* --- page checksum headers --- *)

let test_stamp_verify () =
  let store = Page_store.create ~page_size:512 ~n_disks:2 in
  let p = Page_store.alloc store in
  check_bool "fresh page verifies" true (Page_store.verify store p = Page_store.Ok);
  let b = Page_store.bytes store p in
  Bytes.set b 100 '\x55';
  (match Page_store.verify store p with
  | Page_store.Bad_crc { bad_sectors; _ } ->
      check_bool "damaged sector named" true (bad_sectors = [ 0 ])
  | Page_store.Ok -> Alcotest.fail "corruption not detected");
  Page_store.stamp ~lsn:42 store p;
  check_bool "re-stamp heals" true (Page_store.verify store p = Page_store.Ok);
  check_int "header lsn" 42 (Page_store.header_lsn store p)

(* --- retry/backoff accounting --- *)

let counter pool f = Fpb_obs.Counter.value (f (Buffer_pool.stats pool))

(* The schedule is a pure function of (seed, disk, phys, access count), so
   a test can pick a seed whose draws do exactly what it wants to
   exercise: [want s] sees the location's first two scheduled draws. *)
let find_seed store p want =
  let disk, phys = Page_store.location store p in
  let u s n = Fault.uniform (Fault.draw ~seed:s ~disk ~phys ~n) in
  let rec go s =
    if s > 10_000 then Alcotest.fail "no suitable fault seed"
    else if want (u s 1) (u s 2) then s
    else go (s + 1)
  in
  go 0

(* A page whose reads transiently fail [fail_len] times must come back
   after exactly [fail_len] retries, with the exponential backoff charged
   to the simulated clock. *)
let test_retry_recovers () =
  let _, store, disks, pool = Util.make_system ~page_size:512 ~capacity:8 () in
  let p = Page_store.alloc store in
  Page_store.stamp store p;
  (* First scheduled draw fails, second succeeds: with fail_len = 2 the
     read goes fault, fault (the tail of the first event), then clean. *)
  let seed = find_seed store p (fun u1 u2 -> u1 < 0.5 && u2 >= 0.5) in
  Disk_model.set_faults disks
    (Some
       { Fault.none with Fault.seed; transient_read = 0.5; transient_fail_len = 2 });
  let t0 = Clock.now (Buffer_pool.sim pool).Sim.clock in
  ignore (Buffer_pool.get pool p);
  Buffer_pool.unpin pool p;
  check_int "retries" 2 (counter pool (fun s -> s.Buffer_pool.retry_read));
  check_int "transient errors" 2
    (counter pool (fun s -> s.Buffer_pool.err_transient));
  let policy = Buffer_pool.retry_policy pool in
  let backoff =
    policy.Buffer_pool.backoff_ns
    + (policy.Buffer_pool.backoff_ns * policy.Buffer_pool.backoff_mult)
  in
  check_int "backoff charged" backoff
    (counter pool (fun s -> s.Buffer_pool.retry_wait_ns));
  check_bool "clock advanced past backoff" true
    (Clock.now (Buffer_pool.sim pool).Sim.clock - t0 >= backoff)

(* More consecutive failures than the policy allows must surface as a
   typed, counted Io_error. *)
let test_retry_exhausted () =
  let _, store, disks, pool = Util.make_system ~page_size:512 ~capacity:8 () in
  let p = Page_store.alloc store in
  Page_store.stamp store p;
  Buffer_pool.set_retry_policy pool
    { Buffer_pool.max_retries = 1; backoff_ns = 1000; backoff_mult = 2 };
  (* One scheduled failure eating 5 attempts outlasts a 1-retry budget. *)
  let seed = find_seed store p (fun u1 _ -> u1 < 0.5) in
  Disk_model.set_faults disks
    (Some
       { Fault.none with Fault.seed; transient_read = 0.5; transient_fail_len = 5 });
  (match Buffer_pool.get pool p with
  | _ -> Alcotest.fail "expected Io_error"
  | exception Buffer_pool.Io_error { page; attempts; cause; repair } ->
      check_int "page" p page;
      check_int "attempts" 2 attempts;
      check_bool "cause" true (cause = `Transient);
      check_bool "no repair tried" true (repair = `Not_attempted));
  check_int "unrecoverable counted" 1
    (counter pool (fun s -> s.Buffer_pool.err_unrecoverable));
  (* The fault history survives; once the schedule clears, the page is
     readable again. *)
  Disk_model.set_faults disks None;
  ignore (Buffer_pool.get pool p);
  Buffer_pool.unpin pool p

(* Without a repair hook, corruption must be detected — reads raise, the
   scrubber reports, nothing is silently served. *)
let test_detect_without_repair () =
  let _, store, _, pool = Util.make_system ~page_size:512 ~capacity:8 () in
  let p = Page_store.alloc store in
  Page_store.stamp store p;
  let b = Page_store.bytes store p in
  Bytes.set b 17 '\xff';
  (match Buffer_pool.check_media pool p with
  | `Unrecoverable _ -> ()
  | _ -> Alcotest.fail "scrub should report unrecoverable damage");
  (match Buffer_pool.get pool p with
  | _ -> Alcotest.fail "expected Io_error"
  | exception Buffer_pool.Io_error { cause; _ } ->
      check_bool "checksum cause" true (cause = `Checksum));
  check_int "checksum errors counted" 2
    (counter pool (fun s -> s.Buffer_pool.err_checksum))

(* A hint against a fully-pinned pool is dropped and counted, not
   silently swallowed. *)
let test_prefetch_dropped () =
  let _, store, _, pool = Util.make_system ~page_size:512 ~capacity:2 () in
  let p1 = Page_store.alloc store in
  let p2 = Page_store.alloc store in
  let p3 = Page_store.alloc store in
  List.iter (fun p -> Page_store.stamp store p) [ p1; p2; p3 ];
  ignore (Buffer_pool.get pool p1);
  ignore (Buffer_pool.get pool p2);
  Buffer_pool.prefetch pool p3;
  check_int "dropped" 1
    (counter pool (fun s -> s.Buffer_pool.prefetch_dropped));
  Buffer_pool.unpin pool p1;
  Buffer_pool.unpin pool p2

(* --- paced scrub scheduler --- *)

let test_scrub_scheduler_paces () =
  let _, store, _, pool = Util.make_system ~page_size:512 ~capacity:8 () in
  let pages = List.init 10 (fun _ -> Page_store.alloc store) in
  let n = List.length pages in
  let sched = Scrub.scheduler ~pages_per_tick:3 pool in
  (* Each tick checks at most the bandwidth; a full lap covers every
     live page. *)
  let r1 = Scrub.tick sched in
  check_int "first tick bounded" 3 r1.Scrub.scanned;
  let ticks = ref 1 in
  while (Scrub.total sched).Scrub.scanned < n do
    let r = Scrub.tick sched in
    check_bool "tick bounded" true (r.Scrub.scanned <= 3);
    incr ticks
  done;
  check_int "lap takes ceil(n/bw) ticks" 4 !ticks;
  (* the last tick wraps and revisits the front of the ID space *)
  check_bool "every page came back clean" true
    ((Scrub.total sched).Scrub.clean >= n);
  (* Bandwidth 0 pauses the walk. *)
  Scrub.set_bandwidth sched 0;
  check_int "paused tick scans nothing" 0 (Scrub.tick sched).Scrub.scanned;
  (* The cursor wraps: damage planted anywhere is found on a later lap,
     and with no repair hook it is reported, not hidden. *)
  Scrub.set_bandwidth sched 4;
  let victim = List.nth pages 5 in
  Bytes.set (Page_store.bytes store victim) 9 '\xee';
  let found = ref false in
  for _ = 1 to (n + 3) / 4 do
    let r = Scrub.tick sched in
    if List.mem_assoc victim r.Scrub.unrecoverable then found := true
  done;
  check_bool "wrapped lap finds damage" true !found

(* --- sector-granular repair --- *)

(* A single torn 512-byte sector of a committed, checkpointed page is
   repaired by patching just that sector span (counted under
   [wal.repair.sectors]), not by a full-page rebuild. *)
let test_sector_granular_repair () =
  let sys = X.Setup.make ~n_disks:2 ~pool_pages:32 ~page_size:4096 () in
  let rng = Fpb_workload.Prng.create 11 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng 1_000 in
  let idx = X.Run.build sys X.Setup.Disk_first pairs ~fill:0.8 in
  let wal =
    Fpb_wal.Wal.attach ~log_base_images:true ~meta:(Index_sig.meta idx)
      sys.X.Setup.pool
  in
  for i = 1 to 10 do
    let k, _ = pairs.(Fpb_workload.Prng.int rng (Array.length pairs)) in
    ignore (Index_sig.insert idx k (i * 3));
    Fpb_wal.Wal.commit wal ~op:i ~meta:(Index_sig.meta idx)
  done;
  (* Checkpoint stamps every logged page's header at its newest LSN, so
     the intact sectors provably hold the replayed version. *)
  Fpb_wal.Wal.checkpoint wal ~meta:(Index_sig.meta idx);
  Buffer_pool.clear sys.X.Setup.pool;
  let victim = ref 0 in
  Page_store.iter_live sys.X.Setup.store (fun p ->
      if
        !victim = 0
        && Page_store.header_lsn sys.X.Setup.store p > 0
        && not (Buffer_pool.is_resident sys.X.Setup.pool p)
      then victim := p);
  check_bool "found a stamped victim page" true (!victim > 0);
  let b = Page_store.bytes sys.X.Setup.store !victim in
  Bytes.fill b 512 512 '\xab' (* tear sector 1 exactly *);
  (match Page_store.verify sys.X.Setup.store !victim with
  | Page_store.Bad_crc { bad_sectors; _ } ->
      check_bool "only sector 1 damaged" true (bad_sectors = [ 1 ])
  | Page_store.Ok -> Alcotest.fail "tear not detected");
  Fpb_wal.Wal.reset_stats wal;
  (match Buffer_pool.check_media sys.X.Setup.pool !victim with
  | `Repaired -> ()
  | _ -> Alcotest.fail "sector tear should be repaired");
  let kv = Fpb_wal.Wal.kv wal in
  check_int "one sector span patched" 1 (List.assoc "wal.repair.sectors" kv);
  check_int "no full-page rebuild" 0 (List.assoc "wal.repair.full" kv);
  check_bool "page verifies after patch" true
    (Page_store.verify sys.X.Setup.store !victim = Page_store.Ok);
  Fpb_wal.Wal.detach wal

(* --- scrub + WAL repair property, all four index structures --- *)

(* Build a committed index under a WAL with full-image coverage, flip
   random bytes in random non-resident pages, and require: the scrubber
   repairs every damaged page, structural invariants hold, and the key
   set still equals the model.  Golden-run equality comes free: the
   model is the run with zero flips. *)
let scrub_repair_roundtrip kind seed =
  let sys = X.Setup.make ~n_disks:2 ~pool_pages:32 ~page_size:4096 () in
  let rng = Fpb_workload.Prng.create 11 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng 1_500 in
  let idx = X.Run.build sys kind pairs ~fill:0.8 in
  let wal =
    Fpb_wal.Wal.attach ~log_base_images:true ~meta:(Index_sig.meta idx)
      sys.X.Setup.pool
  in
  (* A few committed updates so some pages carry post-image deltas. *)
  let m = Hashtbl.create 1024 in
  Array.iter (fun (k, v) -> Hashtbl.replace m k v) pairs;
  for i = 1 to 20 do
    let k, _ = pairs.(Fpb_workload.Prng.int rng (Array.length pairs)) in
    ignore (Index_sig.insert idx k (i * 7));
    Hashtbl.replace m k (i * 7);
    Fpb_wal.Wal.commit wal ~op:i ~meta:(Index_sig.meta idx)
  done;
  Buffer_pool.clear sys.X.Setup.pool;
  (* Flip bytes in a few live, non-resident pages. *)
  let live = ref [] in
  Page_store.iter_live sys.X.Setup.store (fun p -> live := p :: !live);
  let live = Array.of_list !live in
  let prng = Fpb_workload.Prng.create seed in
  let damaged = Hashtbl.create 8 in
  for _ = 1 to 1 + Fpb_workload.Prng.int prng 5 do
    let p = live.(Fpb_workload.Prng.int prng (Array.length live)) in
    if not (Buffer_pool.is_resident sys.X.Setup.pool p) then begin
      let b = Page_store.bytes sys.X.Setup.store p in
      let off = Fpb_workload.Prng.int prng (Bytes.length b) in
      let mask = 1 + Fpb_workload.Prng.int prng 254 in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor mask));
      Hashtbl.replace damaged p ()
    end
  done;
  let report = Scrub.run sys.X.Setup.pool in
  if report.Scrub.unrecoverable <> [] then
    Alcotest.failf "scrub could not repair: %s"
      (String.concat ", "
         (List.map
            (fun (p, m) -> Printf.sprintf "page %d (%s)" p m)
            report.Scrub.unrecoverable));
  if report.Scrub.repaired < Hashtbl.length damaged then
    Alcotest.failf "flipped %d pages but scrub repaired only %d"
      (Hashtbl.length damaged) report.Scrub.repaired;
  (match Index_sig.check_invariants idx with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "invariants after repair: %s" msg);
  let got = ref [] in
  Index_sig.iter idx (fun k v -> got := (k, v) :: !got);
  let want = Hashtbl.fold (fun k v acc -> (k, v) :: acc) m [] in
  if List.sort compare !got <> List.sort compare want then
    Alcotest.fail "key set differs from golden model after repair";
  Fpb_wal.Wal.detach wal;
  true

let scrub_qtest kind name =
  Util.qtest ~count:8 ("scrub repairs byte flips: " ^ name)
    QCheck2.Gen.(int_range 0 1_000_000)
    (scrub_repair_roundtrip kind)

let suite =
  [
    Alcotest.test_case "crc32 known vectors" `Quick test_crc_vectors;
    Alcotest.test_case "crc32 incremental update" `Quick test_crc_incremental;
    Alcotest.test_case "crc32 bit sensitivity" `Quick test_crc_sensitivity;
    Alcotest.test_case "page stamp/verify/heal" `Quick test_stamp_verify;
    Alcotest.test_case "transient reads retried with backoff" `Quick
      test_retry_recovers;
    Alcotest.test_case "retry budget exhausted raises Io_error" `Quick
      test_retry_exhausted;
    Alcotest.test_case "corruption detected without repair hook" `Quick
      test_detect_without_repair;
    Alcotest.test_case "prefetch against pinned pool is counted" `Quick
      test_prefetch_dropped;
    Alcotest.test_case "paced scrub scheduler" `Quick test_scrub_scheduler_paces;
    Alcotest.test_case "sector-granular repair" `Quick
      test_sector_granular_repair;
    scrub_qtest X.Setup.Disk_opt "disk-optimized B+tree";
    scrub_qtest X.Setup.Micro "micro-indexing";
    scrub_qtest X.Setup.Disk_first "disk-first fpB+tree";
    scrub_qtest X.Setup.Cache_first "cache-first fpB+tree";
  ]
