(* Unit tests for the storage substrate: page store, disk model, buffer
   pool (CLOCK, pinning, prefetchers, failure injection). *)

open Fpb_simmem
open Fpb_storage

let check_int = Alcotest.(check int)
let cv = Fpb_obs.Counter.value

let test_vec () =
  let v = Vec.create ~dummy:0 in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get" 42 (Vec.get v 42);
  Vec.set v 42 (-1);
  check_int "set" (-1) (Vec.get v 42);
  let sum = ref 0 in
  Vec.iteri (fun i x -> sum := !sum + i + x) v;
  Alcotest.(check bool) "iteri" true (!sum > 0);
  Alcotest.check_raises "oob" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 100))

let test_page_store_alloc_free () =
  let s = Page_store.create ~page_size:4096 ~n_disks:3 in
  let a = Page_store.alloc s in
  let b = Page_store.alloc s in
  let c = Page_store.alloc s in
  Alcotest.(check bool) "ids distinct & non-nil" true
    (a <> b && b <> c && a <> Page_store.nil);
  check_int "live" 3 (Page_store.live_pages s);
  (* pages stripe round-robin across disks *)
  let da, _ = Page_store.location s a in
  let db, _ = Page_store.location s b in
  let dc, _ = Page_store.location s c in
  Alcotest.(check (list int)) "striping" [ 0; 1; 2 ] [ da; db; dc ];
  Bytes.set (Page_store.bytes s b) 0 'x';
  Page_store.free s b;
  check_int "live after free" 2 (Page_store.live_pages s);
  let b' = Page_store.alloc s in
  check_int "freed page reused" b b';
  Alcotest.(check char) "reused page zeroed" '\000' (Bytes.get (Page_store.bytes s b') 0)

let test_disk_model () =
  let clock = Clock.create () in
  let d = Disk_model.create ~seek_ns:1000 ~transfer_ns:100 ~n_disks:2 clock in
  let c1 = Disk_model.read d ~disk:0 ~phys:5 () in
  check_int "random read = seek+transfer" 1100 c1;
  let c2 = Disk_model.read d ~disk:0 ~phys:6 () in
  check_int "sequential read = transfer only" (c1 + 100) c2;
  let c3 = Disk_model.read d ~disk:0 ~phys:0 () in
  check_int "back to random" (c2 + 1100) c3;
  (* the other disk is idle: requests run in parallel *)
  let c4 = Disk_model.read d ~disk:1 ~phys:0 () in
  check_int "parallel disk" 1100 c4;
  (* deferred start *)
  let c5 = Disk_model.read d ~earliest:10_000 ~disk:1 ~phys:1 () in
  check_int "earliest honoured" 10_100 c5;
  check_int "reads counted" 5 (Disk_model.reads d)

let test_buffer_pool_hits_misses () =
  let sim, store, _disks, pool = Util.make_system ~capacity:8 () in
  let p1 = Page_store.alloc store in
  let p2 = Page_store.alloc store in
  let r = Buffer_pool.get pool p1 in
  Mem.write_i32 sim r 0 7;
  Buffer_pool.mark_dirty pool p1;
  Buffer_pool.unpin pool p1;
  ignore (Buffer_pool.get pool p2);
  Buffer_pool.unpin pool p2;
  ignore (Buffer_pool.get pool p1);
  Buffer_pool.unpin pool p1;
  let s = Buffer_pool.stats pool in
  check_int "misses" 2 (cv s.Buffer_pool.misses);
  check_int "hits" 1 (cv s.Buffer_pool.hits);
  (* contents survive eviction via the store *)
  Buffer_pool.clear pool;
  let r = Buffer_pool.get pool p1 in
  check_int "contents persist" 7 (Mem.read_i32 sim r 0);
  Buffer_pool.unpin pool p1

let test_buffer_pool_eviction () =
  let _sim, store, disks, pool = Util.make_system ~capacity:4 () in
  let pages = Array.init 10 (fun _ -> Page_store.alloc store) in
  Array.iter
    (fun p ->
      ignore (Buffer_pool.get pool p);
      Buffer_pool.unpin pool p)
    pages;
  check_int "resident bounded by capacity" 4 (Buffer_pool.resident_pages pool);
  check_int "all reads went to disk" 10 (Disk_model.reads disks)

let test_buffer_pool_pinned_exhaustion () =
  let _sim, store, _disks, pool = Util.make_system ~capacity:2 () in
  let p1 = Page_store.alloc store in
  let p2 = Page_store.alloc store in
  let p3 = Page_store.alloc store in
  ignore (Buffer_pool.get pool p1);
  ignore (Buffer_pool.get pool p2);
  Alcotest.check_raises "exhausted"
    (Buffer_pool.Overloaded { page = p3; scans = 3 })
    (fun () -> ignore (Buffer_pool.get pool p3));
  Buffer_pool.unpin pool p2;
  ignore (Buffer_pool.get pool p3);
  Buffer_pool.unpin pool p3;
  Buffer_pool.unpin pool p1

let test_prefetch_overlap () =
  (* Prefetching n pages on n disks overlaps their seeks: the elapsed
     simulated time is far less than n sequential reads. *)
  let sim, store, _disks, pool = Util.make_system ~n_disks:4 ~capacity:64 () in
  let pages = Array.init 4 (fun _ -> Page_store.alloc store) in
  Buffer_pool.clear pool;
  let t0 = Clock.now sim.Sim.clock in
  Array.iter (Buffer_pool.prefetch pool) pages;
  Array.iter
    (fun p ->
      ignore (Buffer_pool.get pool p);
      Buffer_pool.unpin pool p)
    pages;
  let elapsed = Clock.now sim.Sim.clock - t0 in
  let one_read = Disk_model.default_seek_ns in
  Alcotest.(check bool)
    (Printf.sprintf "4 overlapped reads ~1 seek (elapsed %d)" elapsed)
    true
    (elapsed < 2 * one_read);
  let s = Buffer_pool.stats pool in
  check_int "prefetch issued" 4 (cv s.Buffer_pool.prefetch_issued);
  check_int "prefetch hits" 4 (cv s.Buffer_pool.prefetch_hits);
  check_int "no demand misses" 0 (cv s.Buffer_pool.misses)

let test_prefetcher_limit () =
  (* With a single prefetcher, prefetch reads serialise even on many
     disks. *)
  let sim, store, _, pool =
    Util.make_system ~n_disks:8 ~capacity:64 ~n_prefetchers:1 ()
  in
  let pages = Array.init 8 (fun _ -> Page_store.alloc store) in
  let t0 = Clock.now sim.Sim.clock in
  Array.iter (Buffer_pool.prefetch pool) pages;
  Array.iter
    (fun p ->
      ignore (Buffer_pool.get pool p);
      Buffer_pool.unpin pool p)
    pages;
  let elapsed = Clock.now sim.Sim.clock - t0 in
  Alcotest.(check bool) "serialised by single prefetcher" true
    (elapsed >= 8 * Disk_model.default_seek_ns)

let test_create_and_free_page () =
  let sim, _store, disks, pool = Util.make_system ~capacity:8 () in
  let p, r = Buffer_pool.create_page pool in
  Mem.write_i32 sim r 0 5;
  check_int "no disk read for fresh page" 0 (Disk_model.reads disks);
  Buffer_pool.unpin pool p;
  Buffer_pool.free_page pool p;
  Alcotest.(check bool) "not resident after free" false (Buffer_pool.is_resident pool p)

let test_dirty_writeback () =
  let _sim, store, disks, pool = Util.make_system ~capacity:2 () in
  let p1 = Page_store.alloc store in
  ignore (Buffer_pool.get pool p1);
  Buffer_pool.mark_dirty pool p1;
  Buffer_pool.unpin pool p1;
  Buffer_pool.clear pool;
  check_int "dirty page written back" 1 (Disk_model.writes disks)

let test_page_at_inverse () =
  let s = Page_store.create ~page_size:4096 ~n_disks:3 in
  let pages = Array.init 20 (fun _ -> Page_store.alloc s) in
  Array.iter
    (fun p ->
      let disk, phys = Page_store.location s p in
      check_int "page_at inverts location" p (Page_store.page_at s ~disk ~phys))
    pages;
  check_int "unallocated slot is nil" Page_store.nil
    (Page_store.page_at s ~disk:0 ~phys:999)

let test_sequential_readahead () =
  let sim, store, _disks, pool = Util.make_system ~n_disks:2 ~capacity:64 () in
  let pages = Array.init 12 (fun _ -> Page_store.alloc store) in
  Buffer_pool.set_sequential_readahead pool 4;
  (* miss on the first page of disk 0 kicks off readahead of the next 4
     physically-consecutive pages on that disk *)
  ignore (Buffer_pool.get pool pages.(0));
  Buffer_pool.unpin pool pages.(0);
  let s = Buffer_pool.stats pool in
  check_int "one demand miss" 1 (cv s.Buffer_pool.misses);
  check_int "readahead issued" 4 (cv s.Buffer_pool.prefetch_issued);
  (* the next page on the same disk (striped: pages.(2)) is now in flight;
     getting it is a prefetch hit, not a miss *)
  Fpb_simmem.Clock.advance sim.Fpb_simmem.Sim.clock 100_000_000;
  ignore (Buffer_pool.get pool pages.(2));
  Buffer_pool.unpin pool pages.(2);
  let s = Buffer_pool.stats pool in
  check_int "still one miss" 1 (cv s.Buffer_pool.misses);
  check_int "prefetch hit" 1 (cv s.Buffer_pool.prefetch_hits)

let test_exhaustion_drains_prefetch () =
  (* Every frame holds an in-flight prefetch and nothing is pinned: a
     demand get must wait for the earliest completion and reuse that
     frame, not report pool exhaustion. *)
  let _sim, store, _disks, pool = Util.make_system ~capacity:2 () in
  let p1 = Page_store.alloc store in
  let p2 = Page_store.alloc store in
  let p3 = Page_store.alloc store in
  Buffer_pool.prefetch pool p1;
  Buffer_pool.prefetch pool p2;
  ignore (Buffer_pool.get pool p3);
  Buffer_pool.unpin pool p3;
  Alcotest.(check bool) "demand read landed" true
    (Buffer_pool.is_resident pool p3)

let test_free_invalidates_pool_state () =
  let sim, store, disks, pool = Util.make_system ~capacity:4 () in
  let p, r = Buffer_pool.create_page pool in
  Mem.write_i32 sim r 0 99;
  Buffer_pool.unpin pool p;
  (* free through the store directly: the pool's free observer must drop
     the frame and dirty bit, so the dead page is never written back *)
  let w0 = Disk_model.writes disks in
  Page_store.free store p;
  Alcotest.(check bool) "not resident after store free" false
    (Buffer_pool.is_resident pool p);
  Buffer_pool.clear pool;
  check_int "freed page never written back" w0 (Disk_model.writes disks);
  let p' = Page_store.alloc store in
  check_int "id reused" p p';
  let r' = Buffer_pool.get pool p' in
  check_int "reused page reads zeroed" 0 (Mem.read_i32 sim r' 0);
  (* freeing while pinned is a bug in the caller, not silent corruption *)
  Alcotest.check_raises "freeing pinned raises"
    (Invalid_argument "Buffer_pool: freeing a pinned page") (fun () ->
      Page_store.free store p');
  Buffer_pool.unpin pool p'

(* --- Sharded pool ----------------------------------------------------------- *)

let test_single_client_shard_invariance () =
  (* One client, resident working set: hit/miss counters must not depend
     on the shard count, and a single client can never conflict with
     itself on a shard latch. *)
  let run n_shards =
    let _sim, store, _disks, pool = Util.make_system ~capacity:64 ~n_shards () in
    let pages = Array.init 32 (fun _ -> Page_store.alloc store) in
    for i = 0 to 199 do
      let p = pages.(i * 13 mod 32) in
      ignore (Buffer_pool.get pool p);
      Buffer_pool.unpin pool p
    done;
    let s = Buffer_pool.stats pool in
    ( cv s.Buffer_pool.hits,
      cv s.Buffer_pool.misses,
      cv s.Buffer_pool.shard_conflicts )
  in
  let h1, m1, c1 = run 1 in
  let h8, m8, c8 = run 8 in
  check_int "hits shard-invariant" h1 h8;
  check_int "misses shard-invariant" m1 m8;
  check_int "no conflicts at 1 shard" 0 c1;
  check_int "no conflicts at 8 shards" 0 c8

let test_shard_latch_contention () =
  (* Four interleaved clients on a resident working set: with one shard
     every access queues on the same latch; spreading the table over
     eight shards must cut both the conflict count and the waited time. *)
  let run n_shards =
    let sim, store, _disks, pool = Util.make_system ~capacity:64 ~n_shards () in
    let pages = Array.init 32 (fun _ -> Page_store.alloc store) in
    Array.iter
      (fun p ->
        ignore (Buffer_pool.get pool p);
        Buffer_pool.unpin pool p)
      pages;
    Buffer_pool.reset_stats pool;
    ignore
      (Fpb_workload.Clients.run ~sim ~n_clients:4 ~ops_per_client:50
         (fun ~client ~seq ->
           let p = pages.((client + (7 * seq)) mod Array.length pages) in
           ignore (Buffer_pool.get pool p);
           Buffer_pool.unpin pool p)
        : Fpb_workload.Clients.stats);
    let s = Buffer_pool.stats pool in
    (cv s.Buffer_pool.shard_conflicts, cv s.Buffer_pool.shard_waits_ns)
  in
  let c1, w1 = run 1 in
  let c8, w8 = run 8 in
  Alcotest.(check bool) "single shard conflicts under 4 clients" true
    (c1 > 0 && w1 > 0);
  Alcotest.(check bool)
    (Printf.sprintf "sharding cuts conflicts (%d -> %d)" c1 c8)
    true (c8 < c1);
  Alcotest.(check bool)
    (Printf.sprintf "sharding cuts latch waits (%d -> %d)" w1 w8)
    true (w8 < w1)

let test_multi_client_pin_evict () =
  (* Clients hold a pin while faulting other pages in, so CLOCK keeps
     evicting around live pins on every shard.  No read may ever see
     stale bytes and residency must stay bounded. *)
  let sim, store, _disks, pool = Util.make_system ~capacity:8 ~n_shards:4 () in
  let pages = Array.init 24 (fun _ -> Page_store.alloc store) in
  Array.iteri
    (fun i p ->
      let r = Buffer_pool.get pool p in
      Mem.write_i32 sim r 0 (1000 + i);
      Buffer_pool.mark_dirty pool p;
      Buffer_pool.unpin pool p)
    pages;
  Buffer_pool.clear pool;
  let bad = ref 0 in
  ignore
    (Fpb_workload.Clients.run ~sim ~n_clients:3 ~ops_per_client:60
       (fun ~client ~seq ->
         let i = (client + (3 * seq)) mod Array.length pages in
         let j = (i + 7) mod Array.length pages in
         let r = Buffer_pool.get pool pages.(i) in
         let r2 = Buffer_pool.get pool pages.(j) in
         if Mem.read_i32 sim r2 0 <> 1000 + j then incr bad;
         Buffer_pool.unpin pool pages.(j);
         if Mem.read_i32 sim r 0 <> 1000 + i then incr bad;
         Buffer_pool.unpin pool pages.(i);
         if Buffer_pool.resident_pages pool > 8 then incr bad)
      : Fpb_workload.Clients.stats);
  check_int "no stale reads or over-residency" 0 !bad

let prop_sharded_pool_equivalent =
  (* Observational equivalence: an N-shard pool must behave exactly like
     N independent pools, each of 1/N the capacity, each fed the
     sub-trace of pages hashing to its shard.  Counters and final
     residency must agree, access order within a shard being preserved
     by construction. *)
  Util.qtest ~count:40 "N-shard pool == N independent per-shard pools"
    QCheck2.Gen.(list_size (10 -- 120) (0 -- 19))
    (fun accesses ->
      let n_shards = 4 in
      let _sim, store, _, pool = Util.make_system ~capacity:8 ~n_shards () in
      let pages = Array.init 20 (fun _ -> Page_store.alloc store) in
      let refs =
        Array.init n_shards (fun _ ->
            let _, st, _, p = Util.make_system ~capacity:2 () in
            let ps = Array.init 20 (fun _ -> Page_store.alloc st) in
            assert (ps = pages);
            p)
      in
      List.iter
        (fun i ->
          let page = pages.(i) in
          ignore (Buffer_pool.get pool page);
          Buffer_pool.unpin pool page;
          let s = Buffer_pool.shard_of_page pool page in
          ignore (Buffer_pool.get refs.(s) page);
          Buffer_pool.unpin refs.(s) page)
        accesses;
      let tot f p = cv (f (Buffer_pool.stats p)) in
      let sum f = Array.fold_left (fun a p -> a + tot f p) 0 refs in
      tot (fun s -> s.Buffer_pool.hits) pool = sum (fun s -> s.Buffer_pool.hits)
      && tot (fun s -> s.Buffer_pool.misses) pool
         = sum (fun s -> s.Buffer_pool.misses)
      && tot (fun s -> s.Buffer_pool.evictions) pool
         = sum (fun s -> s.Buffer_pool.evictions)
      && Array.for_all
           (fun page ->
             Buffer_pool.is_resident pool page
             = Buffer_pool.is_resident
                 refs.(Buffer_pool.shard_of_page pool page)
                 page)
           pages)

let prop_clock_never_past_capacity =
  Util.qtest ~count:50 "resident pages never exceed capacity"
    QCheck2.Gen.(list_size (10 -- 80) (0 -- 19))
    (fun accesses ->
      let _sim, store, _, pool = Util.make_system ~capacity:5 () in
      let pages = Array.init 20 (fun _ -> Page_store.alloc store) in
      List.iter
        (fun i ->
          ignore (Buffer_pool.get pool pages.(i));
          Buffer_pool.unpin pool pages.(i);
          assert (Buffer_pool.resident_pages pool <= 5))
        accesses;
      true)

let suite =
  [
    Alcotest.test_case "vec" `Quick test_vec;
    Alcotest.test_case "page store alloc/free" `Quick test_page_store_alloc_free;
    Alcotest.test_case "disk model timing" `Quick test_disk_model;
    Alcotest.test_case "buffer pool hits/misses" `Quick test_buffer_pool_hits_misses;
    Alcotest.test_case "buffer pool eviction" `Quick test_buffer_pool_eviction;
    Alcotest.test_case "pinned exhaustion" `Quick test_buffer_pool_pinned_exhaustion;
    Alcotest.test_case "prefetch overlaps seeks" `Quick test_prefetch_overlap;
    Alcotest.test_case "prefetcher limit" `Quick test_prefetcher_limit;
    Alcotest.test_case "create/free page" `Quick test_create_and_free_page;
    Alcotest.test_case "dirty writeback" `Quick test_dirty_writeback;
    Alcotest.test_case "page_at inverse" `Quick test_page_at_inverse;
    Alcotest.test_case "sequential readahead" `Quick test_sequential_readahead;
    Alcotest.test_case "exhaustion drains in-flight prefetch" `Quick
      test_exhaustion_drains_prefetch;
    Alcotest.test_case "store free invalidates pool state" `Quick
      test_free_invalidates_pool_state;
    Alcotest.test_case "single client is shard-invariant" `Quick
      test_single_client_shard_invariance;
    Alcotest.test_case "shard latch contention" `Quick
      test_shard_latch_contention;
    Alcotest.test_case "multi-client pin/evict interleaving" `Quick
      test_multi_client_pin_evict;
    prop_sharded_pool_equivalent;
    prop_clock_never_past_capacity;
  ]
