(* Unit tests for the simulated memory hierarchy: analytic prefetch costs,
   cache hit/miss behaviour, invalidation, miss-handler bounds. *)

open Fpb_simmem

let cfg = Config.default

let fresh () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  (clock, stats, Cache.create cfg clock stats)

let check_int = Alcotest.(check int)
let cv = Fpb_obs.Counter.value

let test_clock () =
  let c = Clock.create () in
  Clock.advance c 10;
  check_int "advance" 10 (Clock.now c);
  Clock.advance_to c 5;
  check_int "no backwards" 10 (Clock.now c);
  Clock.advance_to c 50;
  check_int "advance_to" 50 (Clock.now c)

let test_cold_miss_latency () =
  let clock, stats, cache = fresh () in
  Cache.access cache 0;
  check_int "first miss costs T1" cfg.Config.mem_latency (Clock.now clock);
  check_int "one memory miss" 1 (cv stats.Stats.mem_misses);
  Cache.access cache 0;
  check_int "hit is free" cfg.Config.mem_latency (Clock.now clock);
  check_int "one L1 hit" 1 (cv stats.Stats.l1_hits)

let test_prefetched_node_cost () =
  (* The pB+-Tree cost model: a w-line node prefetched in full costs
     T1 + (w-1)*Tnext once accessed. *)
  List.iter
    (fun w ->
      let clock, _stats, cache = fresh () in
      for l = 0 to w - 1 do
        Cache.prefetch cache (l * cfg.Config.line_size)
      done;
      (* touch every line of the node *)
      for l = 0 to w - 1 do
        Cache.access cache (l * cfg.Config.line_size)
      done;
      let expected = cfg.Config.mem_latency + ((w - 1) * cfg.Config.mem_gap) in
      check_int (Printf.sprintf "w=%d" w) expected (Clock.now clock))
    [ 1; 2; 3; 8; 16 ]

let test_unprefetched_node_cost () =
  (* Without prefetch, each line is a dependent full miss. *)
  let clock, _stats, cache = fresh () in
  let w = 4 in
  for l = 0 to w - 1 do
    Cache.access cache (l * cfg.Config.line_size)
  done;
  (* misses pipeline through the memory system only if issued while an
     earlier one is outstanding; demand misses here are serial, so each
     costs T1. *)
  check_int "serial misses" (w * cfg.Config.mem_latency) (Clock.now clock)

let test_l2_hit () =
  let clock, stats, cache = fresh () in
  Cache.access cache 0;
  let t0 = Clock.now clock in
  (* evict from L1 by filling its set: addresses that map to the same L1
     set are line_size * l1_sets apart *)
  let l1_sets = cfg.Config.l1_size / (cfg.Config.line_size * cfg.Config.l1_assoc) in
  let stride = cfg.Config.line_size * l1_sets in
  (* choose conflicting addresses that do NOT conflict in L2 *)
  Cache.access cache stride;
  Cache.access cache (2 * stride);
  ignore t0;
  Cache.access cache 0;
  (* 0 was evicted from L1 (2-way set, 2 newer residents) but lives in L2 *)
  Alcotest.(check bool) "l2 hit recorded" true (cv stats.Stats.l2_hits >= 1)

let test_invalidate () =
  let _clock, stats, cache = fresh () in
  Cache.access cache 0;
  Cache.invalidate_range cache 0 cfg.Config.line_size;
  Cache.access cache 0;
  check_int "miss again after invalidate" 2 (cv stats.Stats.mem_misses)

let test_miss_handler_bound () =
  let _clock, stats, cache = fresh () in
  (* more outstanding prefetches than handlers forces issue stalls *)
  for l = 0 to (2 * cfg.Config.miss_handlers) - 1 do
    Cache.prefetch cache (l * cfg.Config.line_size)
  done;
  Alcotest.(check bool) "prefetch waits happened" true
    (cv stats.Stats.prefetch_waits > 0)

let test_flush () =
  let _clock, stats, cache = fresh () in
  Cache.access cache 0;
  Cache.flush cache;
  Cache.access cache 0;
  check_int "miss after flush" 2 (cv stats.Stats.mem_misses)

let test_mem_accessors () =
  let sim = Sim.create () in
  let r = Mem.make ~bytes:(Bytes.create 4096) ~base:0 in
  Mem.write_i32 sim r 0 (-123456);
  Mem.write_u16 sim r 100 65535;
  Mem.write_u8 sim r 200 255;
  Alcotest.(check int) "i32 roundtrip" (-123456) (Mem.read_i32 sim r 0);
  Alcotest.(check int) "u16 roundtrip" 65535 (Mem.read_u16 sim r 100);
  Alcotest.(check int) "u8 roundtrip" 255 (Mem.read_u8 sim r 200);
  Mem.write_i32 sim r 0 77;
  Mem.blit sim r 0 r 500 4;
  Alcotest.(check int) "blit copies" 77 (Mem.read_i32 sim r 500);
  Mem.fill_zero sim r 500 4;
  Alcotest.(check int) "fill zero" 0 (Mem.read_i32 sim r 500);
  Alcotest.(check int) "peek matches" 77 (Mem.peek_i32 r 0)

let test_busy_accounting () =
  let sim = Sim.create () in
  Sim.charge_busy sim 42;
  Alcotest.(check int) "busy charged" 42 (cv sim.Sim.stats.Stats.busy);
  Alcotest.(check int) "clock advanced" 42 (Sim.now sim);
  let s0 = Stats.snapshot sim.Sim.stats in
  Sim.charge_busy sim 8;
  let b, st, _ = Stats.since sim.Sim.stats s0 in
  Alcotest.(check (pair int int)) "delta" (8, 0) (b, st)

let prop_prefetch_batch_cost =
  Util.qtest "prefetched batch never dearer than serial misses"
    QCheck2.Gen.(1 -- 30)
    (fun w ->
      let clock1, _, cache1 = fresh () in
      for l = 0 to w - 1 do
        Cache.prefetch cache1 (l * 64)
      done;
      for l = 0 to w - 1 do
        Cache.access cache1 (l * 64)
      done;
      let clock2, _, cache2 = fresh () in
      for l = 0 to w - 1 do
        Cache.access cache2 (l * 64)
      done;
      Clock.now clock1 <= Clock.now clock2)

let suite =
  [
    Alcotest.test_case "clock" `Quick test_clock;
    Alcotest.test_case "cold miss latency" `Quick test_cold_miss_latency;
    Alcotest.test_case "prefetched node T1+(w-1)Tnext" `Quick test_prefetched_node_cost;
    Alcotest.test_case "unprefetched node serial misses" `Quick test_unprefetched_node_cost;
    Alcotest.test_case "L2 hit after L1 eviction" `Quick test_l2_hit;
    Alcotest.test_case "invalidate range" `Quick test_invalidate;
    Alcotest.test_case "miss handler bound" `Quick test_miss_handler_bound;
    Alcotest.test_case "flush" `Quick test_flush;
    Alcotest.test_case "mem accessors" `Quick test_mem_accessors;
    Alcotest.test_case "busy accounting" `Quick test_busy_accounting;
    prop_prefetch_batch_cost;
  ]
