(* Tests for WAL log-shipping replication: link-level in-order delivery
   and determinism, PRNG splitting, the zero-committed-loss failover
   property at random async kill points, a semi-sync boundary sweep,
   divergence detection on old-primary rejoin, and the retention /
   snapshot catch-up path. *)

open Fpb_btree_common
module X = Fpb_experiments
module W = Fpb_workload
module Wal = Fpb_wal.Wal
module Shadow = Fpb_snapshot.Shadow
module Replica = Fpb_replica.Replica
module Net = Fpb_replica.Net

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let kind = X.Setup.Disk_first
let fill = 0.8
let page_size = 4096

(* --- Prng.split ----------------------------------------------------- *)

let draws rng n = List.init n (fun _ -> W.Prng.int rng 1_000_000)

let test_prng_split () =
  let parent = W.Prng.create 42 in
  let a = W.Prng.split parent in
  let b = W.Prng.split parent in
  let da = draws a 16 and db = draws b 16 in
  check_bool "children diverge" false (da = db);
  (* same seed, same split order: byte-identical substreams *)
  let parent' = W.Prng.create 42 in
  let a' = W.Prng.split parent' in
  let b' = W.Prng.split parent' in
  Alcotest.(check (list int)) "first child deterministic" da (draws a' 16);
  Alcotest.(check (list int)) "second child deterministic" db (draws b' 16);
  (* splitting must not entangle the parent's own stream *)
  let lone = W.Prng.create 42 in
  ignore (W.Prng.split lone);
  ignore (W.Prng.split lone);
  let tapped = W.Prng.create 42 in
  ignore (W.Prng.split tapped);
  ignore (W.Prng.split tapped);
  Alcotest.(check (list int)) "parent stream unaffected by child draws"
    (draws lone 8) (draws tapped 8)

(* --- Net: in-order delivery under loss + reordering ------------------ *)

let faulty_profile =
  {
    Net.default_profile with
    Net.loss = 0.1;
    rto_ns = 500_000;
    reorder_p = 0.3;
    reorder_extra_ns = 400_000;
  }

let delivery_times seed =
  let link = Net.create ~prng:(W.Prng.create seed) faulty_profile in
  let out = ref [] in
  for i = 0 to 199 do
    out := Net.deliver link ~send:(i * 50_000) ~bytes:256 :: !out
  done;
  (link, List.rev !out)

let test_net_in_order () =
  let link, times = delivery_times 11 in
  let prev = ref min_int in
  List.iteri
    (fun i t ->
      if t < !prev then
        Alcotest.failf "delivery %d at %d overtakes predecessor at %d" i t !prev;
      if t < i * 50_000 then Alcotest.failf "delivery %d before its send" i;
      prev := t)
    times;
  (* the profile must actually have exercised the fault paths *)
  let kv = Net.kv link in
  check_bool "some transmissions lost" true (List.assoc "net.drops" kv > 0);
  check_bool "some reorders drawn" true (List.assoc "net.reorders" kv > 0)

let test_net_determinism () =
  let _, a = delivery_times 11 in
  let _, b = delivery_times 11 in
  Alcotest.(check (list int)) "same seed, same schedule" a b;
  let _, c = delivery_times 12 in
  check_bool "different seed perturbs the schedule" false (a = c)

(* --- replicated system scaffolding ----------------------------------- *)

(* Small bulkloaded tree + attached WAL + 2-replica group over healthy
   links; serial committed inserts via [step]. *)
let build_group ?(mode = Replica.Semi_sync 1) () =
  let rng = W.Prng.create 7 in
  let pairs = W.Keygen.bulk_pairs rng 400 in
  let sys = X.Setup.make ~n_disks:2 ~pool_pages:96 ~n_shards:1 ~page_size () in
  let idx = X.Run.build sys kind pairs ~fill in
  let wal = Wal.attach ~meta:(Index_sig.meta idx) sys.X.Setup.pool in
  let group =
    Replica.create
      ~config:{ Replica.default_config with Replica.mode }
      ~prng:(W.Prng.create 0xbeef)
      ~profiles:[ Net.default_profile; Net.default_profile ]
      (wal, sys.X.Setup.pool)
  in
  (sys, idx, wal, group)

let key_of i = 0x4000_0000 + i

let step idx wal committed =
  incr committed;
  ignore (Index_sig.insert idx (key_of !committed) (!committed land 0xFFFF));
  Wal.commit wal ~op:!committed ~meta:(Index_sig.meta idx)

(* --- semi-sync: no acked commit survives a kill ----------------------- *)

let test_semi_sync_kill_boundaries () =
  List.iter
    (fun kill_at ->
      let _sys, idx, wal, group = build_group ~mode:(Replica.Semi_sync 1) () in
      let committed = ref 0 in
      for _ = 1 to kill_at do
        step idx wal committed
      done;
      Wal.crash_now wal;
      Replica.kill group;
      let horizon =
        match Replica.killed_at group with
        | Some h -> h
        | None -> Alcotest.fail "killed_at unset after kill"
      in
      (* serial loop: a returned commit is an acked commit *)
      let acked = Replica.acked_op group ~horizon in
      check_int "acked = commits returned" kill_at acked;
      let p = Replica.promote group in
      check_bool "no acked commit lost" true (p.Replica.committed_op >= acked);
      let idx2 = X.Run.adopt kind p.Replica.pool ~meta:p.Replica.meta in
      for i = 1 to p.Replica.committed_op do
        match Index_sig.search idx2 (key_of i) with
        | Some _ -> ()
        | None ->
            Alcotest.failf "kill@%d: committed key %d missing after failover"
              kill_at i
      done;
      Index_sig.check idx2)
    [ 1; 3; 7; 12 ]

(* --- async: a kill loses exactly the unshipped suffix ----------------- *)

(* Golden run measuring where the op stream lives in the sealed log, so
   the property can aim a crash byte anywhere inside it. *)
let async_op_span =
  lazy
    (let _sys, idx, wal, group = build_group ~mode:Replica.Async () in
     let committed = ref 0 in
     let b0 = Wal.log_bytes wal in
     for _ = 1 to 25 do
       step idx wal committed
     done;
     Replica.detach group;
     (b0, Wal.log_bytes wal - b0))

let async_kill_prop frac =
  let b0, span = Lazy.force async_op_span in
  let crash_byte = b0 + (frac * (span - 1) / 9999) in
  let _sys, idx, wal, group = build_group ~mode:Replica.Async () in
  Wal.set_crash_at_byte wal (Some crash_byte);
  let committed = ref 0 in
  (try
     for _ = 1 to 25 do
       step idx wal committed
     done
   with Wal.Crashed -> ());
  if not (Wal.is_crashed wal) then Wal.crash_now wal;
  Replica.kill group;
  let horizon = Option.get (Replica.killed_at group) in
  let best =
    let b = ref 0 in
    for i = 0 to Replica.n_nodes group - 1 do
      b :=
        max !b
          (Replica.node_durable_op group (Replica.node group i) ~horizon)
    done;
    !b
  in
  let acked = Replica.acked_op group ~horizon in
  let p = Replica.promote group in
  (* most-advanced durable prefix wins; async acks can outrun replicas
     but never the primary's own durable log *)
  p.Replica.committed_op = best && best <= acked && acked <= !committed

(* --- divergence detection on old-primary rejoin ----------------------- *)

let test_rejoin_divergence () =
  let sys, idx, wal, group = build_group ~mode:(Replica.Semi_sync 1) () in
  let committed = ref 0 in
  for _ = 1 to 30 do
    step idx wal committed
  done;
  (* partition the primary away: the group freezes, but the old primary
     keeps committing a suffix nobody ever ships *)
  Replica.kill group;
  for _ = 1 to 5 do
    step idx wal committed
  done;
  let p = Replica.promote group in
  check_int "promoted at the last shipped commit" 30 p.Replica.committed_op;
  let idx2 = X.Run.adopt kind p.Replica.pool ~meta:p.Replica.meta in
  let group2 = Replica.resume group p in
  let committed2 = ref 30 in
  for _ = 1 to 8 do
    step idx2 p.Replica.wal committed2
  done;
  (* the old primary comes back: its durable suffix (ops 31..35) forks
     from the surviving history right after the promotion point *)
  match
    Replica.rejoin group2 ~old_pool:sys.X.Setup.pool ~old_wal:wal
      ~prng:(W.Prng.create 99) ()
  with
  | Replica.Snapshot_required _ ->
      Alcotest.fail "untrimmed archive must allow a delta rejoin"
  | Replica.Rejoined { fork_lsn; truncated_records; pages_copied } ->
      check_int "fork right after the promoted commit"
        (p.Replica.committed_lsn + 1) fork_lsn;
      check_bool "divergent suffix truncated" true (truncated_records > 0);
      check_bool "fork-touched pages re-shipped" true (pages_copied > 0);
      (* one replica became the primary, one survived, plus the rejoin *)
      check_int "rejoined node added" 2 (Replica.n_nodes group2);
      let back = Replica.node group2 (Replica.n_nodes group2 - 1) in
      check_int "rejoined node converges on the surviving history" 38
        (Replica.sync_node group2 ~horizon:max_int back);
      Index_sig.check idx2

(* --- retention: log catch-up refused, snapshot path succeeds ---------- *)

let test_retention_snapshot_catchup () =
  let sys, idx, wal, group = build_group ~mode:(Replica.Semi_sync 1) () in
  let sh = Shadow.attach ~meta:(Index_sig.meta idx) wal sys.X.Setup.pool in
  let committed = ref 0 in
  for _ = 1 to 10 do
    step idx wal committed
  done;
  let dark = Replica.node group 1 in
  Replica.detach_replica group dark;
  for i = 1 to 60 do
    step idx wal committed;
    if i mod 15 = 0 then begin
      Shadow.checkpoint_sync sh ~meta:(Index_sig.meta idx);
      ignore
        (Replica.trim_archive group ~below_lsn:(Shadow.retention_lsn sh) : int)
    end
  done;
  (match Replica.catch_up_via_log group dark with
  | `Retention_exceeded -> ()
  | `Ok _ -> Alcotest.fail "trimmed archive must refuse log catch-up");
  let snap = Shadow.open_at_checkpoint sh in
  let pages, tail, ns = Replica.catch_up_via_snapshot group dark ~snapshot:snap in
  Shadow.close snap;
  check_bool "snapshot shipped pages" true (pages > 0);
  check_bool "tail replay bounded by ops since the cut" true (tail >= 0);
  check_bool "catch-up charged simulated time" true (ns > 0);
  check_int "dark replica fully caught up" !committed
    (Replica.node_committed_op dark);
  (* the healthy replica was never behind *)
  check_int "live replica converged" !committed
    (Replica.sync_node group ~horizon:max_int (Replica.node group 0))

let suite =
  [
    Alcotest.test_case "prng split: deterministic, independent" `Quick
      test_prng_split;
    Alcotest.test_case "net: in-order delivery under loss/reorder" `Quick
      test_net_in_order;
    Alcotest.test_case "net: same seed, same schedule" `Quick
      test_net_determinism;
    Alcotest.test_case "semi-sync: kill boundary sweep loses no acked op"
      `Quick test_semi_sync_kill_boundaries;
    Util.qtest ~count:12 "async: promotion = most advanced durable prefix"
      QCheck2.Gen.(int_bound 9999)
      async_kill_prop;
    Alcotest.test_case "rejoin: divergent suffix detected and truncated"
      `Quick test_rejoin_divergence;
    Alcotest.test_case "retention: snapshot catch-up after trim" `Quick
      test_retention_snapshot_catchup;
  ]
