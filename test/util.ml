(* Shared test helpers. *)

open Fpb_simmem
open Fpb_storage

let make_system ?(page_size = 4096) ?(n_disks = 4) ?(capacity = 8192)
    ?(n_prefetchers = 4) ?n_shards () =
  let sim = Sim.create () in
  let store = Page_store.create ~page_size ~n_disks in
  let disks =
    Disk_model.create
      ~transfer_ns:(Disk_model.transfer_ns_of_page_size page_size)
      ~n_disks sim.Sim.clock
  in
  let pool =
    Buffer_pool.create ~n_prefetchers ?n_shards ~capacity sim store disks
  in
  (sim, store, disks, pool)

let make_pool ?page_size ?n_disks ?capacity ?n_shards () =
  let _, _, _, pool = make_system ?page_size ?n_disks ?capacity ?n_shards () in
  pool

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
