(* Smoke tests for the experiment harness itself: the registry is complete
   and the cheap experiments produce well-formed tables. *)

open Fpb_experiments

let expected_ids =
  [ "table1"; "table2"; "fig3b"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14";
    "fig15"; "fig16"; "fig17"; "fig18a"; "fig18bc"; "fig19"; "ablation";
    "ext-varkey"; "ext-skew"; "recovery"; "concurrency"; "ycsb"; "faults";
    "checkpoint"; "overload"; "batch"; "replica" ]

let test_registry_complete () =
  List.iter
    (fun id ->
      if Registry.find id = None then Alcotest.failf "missing experiment %s" id)
    expected_ids;
  Alcotest.(check int) "no unexpected experiments" (List.length expected_ids)
    (List.length Registry.all)

let test_tables_well_formed () =
  let check_table (t : Table.t) =
    if t.Table.header = [] then Alcotest.failf "%s: empty header" t.Table.id;
    List.iter
      (fun row ->
        if List.length row <> List.length t.Table.header then
          Alcotest.failf "%s: ragged row" t.Table.id)
      t.Table.rows
  in
  check_table (Exp_config.table1 ());
  check_table (Exp_config.table2 ());
  check_table (Exp_db2.fig19a Scale.Quick);
  check_table (Exp_db2.fig19b Scale.Quick)

let test_csv_roundtrip () =
  let t = Exp_config.table1 () in
  let csv = Table.csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "csv rows" (1 + List.length t.Table.rows) (List.length lines)

let test_measure_cycles_isolated () =
  (* measurement must reset stats so back-to-back measures are independent *)
  let sys = Setup.make ~page_size:4096 () in
  let m1 = Setup.measure_cycles sys (fun () -> Fpb_simmem.Sim.charge_busy sys.Setup.sim 100) in
  let m2 = Setup.measure_cycles sys (fun () -> ()) in
  Alcotest.(check int) "first measure" 100 m1.Setup.busy;
  Alcotest.(check int) "second measure clean" 0 m2.Setup.total

let test_find_prefix () =
  (match Registry.find "fig3" with
  | Some e -> Alcotest.(check string) "unique prefix resolves" "fig3b" e.Registry.id
  | None -> Alcotest.fail "fig3 should resolve to fig3b");
  Alcotest.(check bool) "ambiguous prefix rejected" true (Registry.find "fig18" = None);
  Alcotest.(check bool)
    "exact id wins over prefixes" true
    (match Registry.find "fig18a" with Some e -> e.Registry.id = "fig18a" | None -> false)

(* Every registered experiment runs at Tiny scale, and the resulting
   report serialises to JSON that parses back with all ids present and a
   metrics record per experiment. *)
let test_full_report_roundtrip () =
  let module J = Fpb_obs.Json in
  let outcomes = List.map (Registry.run_entry Scale.Tiny) Registry.all in
  let json =
    Report.make ~scale:Scale.Tiny ~timestamp:"1970-01-01T00:00:00Z"
      ~bechamel:[ ("search/demo", 120.5) ]
      outcomes
  in
  let parsed = J.parse (J.to_string json) in
  let exps =
    Option.value ~default:[] (Option.bind (J.member "experiments" parsed) J.to_list)
  in
  let ids = List.filter_map (fun e -> Option.bind (J.member "id" e) J.to_str) exps in
  Alcotest.(check (list string))
    "every registered experiment reported"
    (List.map (fun e -> e.Registry.id) Registry.all)
    ids;
  List.iter
    (fun e ->
      match Option.bind (J.member "metrics" e) (J.member "counters") with
      | Some (J.Obj _) -> ()
      | _ ->
          Alcotest.failf "%s: missing counters object"
            (Option.value ~default:"?" (Option.bind (J.member "id" e) J.to_str)))
    exps

let suite =
  [
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "find: unique prefix" `Quick test_find_prefix;
    Alcotest.test_case "tables well-formed" `Quick test_tables_well_formed;
    Alcotest.test_case "csv" `Quick test_csv_roundtrip;
    Alcotest.test_case "measurement isolation" `Quick test_measure_cycles_isolated;
    Alcotest.test_case "full tiny report round-trips" `Slow test_full_report_roundtrip;
  ]
