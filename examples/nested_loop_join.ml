(* Index nested-loop join (the paper's Section 2.1 motivation): joining an
   outer relation against an indexed inner relation probes the index once
   per outer row.  Optimizers often sort the outer on the join key first,
   which turns the probe stream into an in-order traversal of the inner
   index's leaves — friendly to the buffer pool and to prefetching.  This
   example measures both probe orders against a disk-first fpB+-Tree with
   a buffer pool much smaller than the index.

   Run with: dune exec examples/nested_loop_join.exe *)

open Fpb_simmem
open Fpb_storage
open Fpb_core

let () =
  let inner_n = 1_000_000 in
  let outer_n = 50_000 in
  let sim = Sim.create () in
  (* pool holds ~15% of the inner index *)
  let pool = Fpb.make_pool ~page_size:16384 ~n_disks:4 ~capacity:120 sim in
  let index = Fpb.Disk_first.create pool in
  let rng = Fpb_workload.Prng.create 31 in
  let inner = Fpb_workload.Keygen.bulk_pairs rng inner_n in
  Fpb.Disk_first.bulkload index inner ~fill:1.0;
  Fmt.pr "inner: %d rows indexed on %d pages; pool: 120 pages@." inner_n
    (Fpb.Disk_first.page_count index);

  (* outer join keys: a random sample of inner keys *)
  let outer = Fpb_workload.Keygen.probes rng inner outer_n in
  let join probe_keys =
    Buffer_pool.clear pool;
    Buffer_pool.reset_stats pool;
    let t0 = Clock.now sim.Sim.clock in
    let matches = ref 0 in
    Array.iter
      (fun k -> if Fpb.Disk_first.search index k <> None then incr matches)
      probe_keys;
    let elapsed = Clock.now sim.Sim.clock - t0 in
    let s = Buffer_pool.stats pool in
    (!matches, elapsed, Fpb_obs.Counter.value s.Buffer_pool.misses)
  in
  let m1, t1, io1 = join outer in
  let sorted = Array.copy outer in
  Array.sort compare sorted;
  let m2, t2, io2 = join sorted in
  Fmt.pr "@.%-22s %12s %14s@." "probe order" "page reads" "sim time (ms)";
  Fmt.pr "%-22s %12d %14.1f@." "random (as arrived)" io1
    (float_of_int t1 /. 1e6);
  Fmt.pr "%-22s %12d %14.1f@." "sorted on join key" io2
    (float_of_int t2 /. 1e6);
  Fmt.pr "@.sorting the outer cut page reads by %.1fx and time by %.1fx@."
    (float_of_int io1 /. float_of_int (max 1 io2))
    (float_of_int t1 /. float_of_int (max 1 t2));
  assert (m1 = m2 && m1 = outer_n)
