(* OLTP-style example: a mixed workload (60% searches / 30% inserts /
   10% deletes) over memory-resident trees, comparing the CPU-cache cost
   of a disk-optimized B+-Tree against both fpB+-Tree variants — the
   paper's headline claim that fpB+-Trees win on updates without losing
   on searches.

   Run with: dune exec examples/oltp_workload.exe *)

open Fpb_simmem
open Fpb_btree_common
open Fpb_experiments

let () =
  let n = 500_000 in
  let ops = 10_000 in
  let rng = Fpb_workload.Prng.create 77 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
  Fmt.pr "Mixed OLTP workload: %d ops (60%% search / 30%% insert / 10%% delete), %d keys@."
    ops n;
  Fmt.pr "%-26s %12s %12s %12s@." "index" "busy (Mc)" "stalls (Mc)" "total (Mc)";
  List.iter
    (fun kind ->
      let sys, idx = Run.fresh ~page_size:16384 kind pairs ~fill:0.8 in
      let wl_rng = Fpb_workload.Prng.create 78 in
      Sim.flush_cache sys.Setup.sim;
      Sim.reset_stats sys.Setup.sim;
      for _ = 1 to ops do
        let dice = Fpb_workload.Prng.int wl_rng 10 in
        let k = fst pairs.(Fpb_workload.Prng.int wl_rng n) in
        if dice < 6 then ignore (Index_sig.search idx k)
        else if dice < 9 then
          ignore (Index_sig.insert idx (Fpb_workload.Prng.int wl_rng Key.max_key) 1)
        else ignore (Index_sig.delete idx k)
      done;
      let s = sys.Setup.sim.Sim.stats in
      Fmt.pr "%-26s %12.3f %12.3f %12.3f@." (Setup.kind_name kind)
        (float_of_int (Fpb_obs.Counter.value s.Stats.busy) /. 1e6)
        (float_of_int (Fpb_obs.Counter.value s.Stats.stall) /. 1e6)
        (float_of_int (Stats.total s) /. 1e6);
      Index_sig.check idx)
    Setup.all_kinds
